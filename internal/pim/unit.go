package pim

import (
	"fmt"

	"orderlight/internal/dram"
	"orderlight/internal/isa"
)

// Unit is one PIM compute unit. It is not safe for concurrent use; the
// simulator drives it from the single-threaded event loop.
type Unit struct {
	channel int
	lanes   int
	slots   [][]int32
	store   dram.Memory

	// deferred holds commands whose functional execution has been
	// pushed into the future (fault injection: delayed write-back
	// visibility). Entries are appended in issue order with a constant
	// per-plan lag, so due times are non-decreasing and RunDue drains
	// from the front.
	deferred []deferredCmd

	// Executed counts commands by kind, for statistics.
	Executed map[isa.Kind]int64
}

// deferredCmd is one command awaiting deferred execution.
type deferredCmd struct {
	r   isa.Request
	due int64 // memory cycle at which the command becomes visible
}

// NewUnit creates a PIM unit with nslots temporary-storage slots over
// the given backing memory (a *dram.Store, or a *dram.Overlay when the
// parallel engine shards the machine by channel).
func NewUnit(channel, nslots int, store dram.Memory) *Unit {
	u := &Unit{
		channel:  channel,
		lanes:    store.Lanes(),
		slots:    make([][]int32, nslots),
		store:    store,
		Executed: make(map[isa.Kind]int64),
	}
	for i := range u.slots {
		u.slots[i] = make([]int32, u.lanes)
	}
	return u
}

// Slots returns the temporary-storage capacity in slots.
func (u *Unit) Slots() int { return len(u.slots) }

// SetMemory swaps the unit's backing memory. The parallel engine uses
// it to point the unit at a per-channel overlay for the duration of a
// run and back at the master store afterwards; the lane width must
// match the one the unit was built with.
func (u *Unit) SetMemory(m dram.Memory) {
	if m.Lanes() != u.lanes {
		panic("pim: SetMemory with mismatched lane count")
	}
	u.store = m
}

// Slot returns a copy of a TS slot's contents, for tests.
func (u *Unit) Slot(i int) []int32 {
	out := make([]int32, u.lanes)
	copy(out, u.slots[i])
	return out
}

// Exec executes one fine-grained PIM command. It returns an error for
// malformed commands (wrong channel, bad TS slot, non-PIM kind); the
// simulator treats such an error as a fatal modeling bug.
func (u *Unit) Exec(r isa.Request) error {
	if r.Channel != u.channel {
		return fmt.Errorf("pim: command for channel %d reached unit of channel %d", r.Channel, u.channel)
	}
	if r.Kind != isa.KindPIMScale && r.Kind.IsPIM() {
		if r.TSlot < 0 || r.TSlot >= len(u.slots) {
			return fmt.Errorf("pim: TS slot %d out of range [0,%d) for %v", r.TSlot, len(u.slots), r)
		}
	}
	switch r.Kind {
	case isa.KindPIMLoad:
		copy(u.slots[r.TSlot], u.store.Read(r.Addr))
	case isa.KindPIMCompute:
		operand := u.store.Read(r.Addr)
		slot := u.slots[r.TSlot]
		for l := range slot {
			slot[l] = r.Op.Apply(slot[l], operand[l], r.Imm)
		}
	case isa.KindPIMStore:
		u.store.Write(r.Addr, u.slots[r.TSlot])
	case isa.KindPIMScale:
		u.store.Update(r.Addr, func(_ int, old int32) int32 {
			return r.Op.Apply(old, old, r.Imm)
		})
	case isa.KindPIMExec:
		slot := u.slots[r.TSlot]
		for l := range slot {
			slot[l] = r.Op.Apply(slot[l], r.Imm, r.Imm)
		}
	default:
		return fmt.Errorf("pim: unit cannot execute %v", r.Kind)
	}
	u.Executed[r.Kind]++
	return nil
}

// Defer queues r to execute functionally at memory cycle due instead of
// now — the fault injector's delayed-visibility hook. The command has
// already been acknowledged upstream; only its state change lags.
func (u *Unit) Defer(r isa.Request, due int64) {
	u.deferred = append(u.deferred, deferredCmd{r: r, due: due})
}

// RunDue executes every deferred command whose due cycle has arrived,
// in deferral order.
func (u *Unit) RunDue(cycle int64) error {
	for len(u.deferred) > 0 && u.deferred[0].due <= cycle {
		d := u.deferred[0]
		copy(u.deferred, u.deferred[1:])
		u.deferred = u.deferred[:len(u.deferred)-1]
		if err := u.Exec(d.r); err != nil {
			return err
		}
	}
	return nil
}

// Deferred returns the number of commands awaiting deferred execution.
func (u *Unit) Deferred() int { return len(u.deferred) }

// NextDue returns the earliest due cycle among deferred commands, or
// false when none are pending.
func (u *Unit) NextDue() (int64, bool) {
	if len(u.deferred) == 0 {
		return 0, false
	}
	return u.deferred[0].due, true
}

// Replay executes a command sequence in the given (program) order on a
// fresh PIM unit over the store. It is the reference executor used to
// compute golden results: running the same commands through the full
// simulator must leave the store in the same state whenever the ordering
// primitive did its job.
func Replay(store *dram.Store, channel, nslots int, reqs []isa.Request) error {
	u := NewUnit(channel, nslots, store)
	for _, r := range reqs {
		if r.Kind == isa.KindOrderLight || r.Kind == isa.KindFence {
			continue // ordering primitives are no-ops functionally
		}
		if !r.Kind.IsPIM() {
			continue // host traffic does not touch PIM state
		}
		if err := u.Exec(r); err != nil {
			return err
		}
	}
	return nil
}

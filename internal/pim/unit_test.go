package pim

import (
	"testing"
	"testing/quick"

	"orderlight/internal/dram"
	"orderlight/internal/isa"
)

func newTestUnit(nslots int) (*Unit, *dram.Store) {
	st := dram.NewStore(4)
	return NewUnit(0, nslots, st), st
}

func TestUnitVectorAddSequence(t *testing.T) {
	// The Figure 4 vector_add flow on one slot: load a, fetch-and-add b,
	// store c.
	u, st := newTestUnit(2)
	a, b, c := isa.Addr(0), isa.Addr(1), isa.Addr(2)
	st.Write(a, []int32{1, 2, 3, 4})
	st.Write(b, []int32{10, 20, 30, 40})

	steps := []isa.Request{
		{Kind: isa.KindPIMLoad, Addr: a, TSlot: 0},
		{Kind: isa.KindPIMCompute, Op: isa.OpAdd, Addr: b, TSlot: 0},
		{Kind: isa.KindPIMStore, Addr: c, TSlot: 0},
	}
	for _, s := range steps {
		if err := u.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Read(c)
	want := []int32{11, 22, 33, 44}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c = %v, want %v", got, want)
		}
	}
	if u.Executed[isa.KindPIMLoad] != 1 || u.Executed[isa.KindPIMStore] != 1 {
		t.Fatalf("Executed = %v", u.Executed)
	}
}

func TestUnitScaleRMW(t *testing.T) {
	u, st := newTestUnit(1)
	st.Write(5, []int32{1, 2, 3, 4})
	if err := u.Exec(isa.Request{Kind: isa.KindPIMScale, Op: isa.OpScale, Addr: 5, Imm: 3}); err != nil {
		t.Fatal(err)
	}
	if got := st.Read(5); got[3] != 12 {
		t.Fatalf("scaled = %v, want [3 6 9 12]", got)
	}
}

func TestUnitExecPureALU(t *testing.T) {
	u, st := newTestUnit(1)
	st.Write(0, []int32{5, 5, 5, 5})
	u.Exec(isa.Request{Kind: isa.KindPIMLoad, Addr: 0, TSlot: 0})
	if err := u.Exec(isa.Request{Kind: isa.KindPIMExec, Op: isa.OpAdd, TSlot: 0, Imm: 7}); err != nil {
		t.Fatal(err)
	}
	if got := u.Slot(0); got[0] != 12 {
		t.Fatalf("slot = %v, want all 12", got)
	}
}

func TestUnitMACCompute(t *testing.T) {
	// Triad: c = a + s*b via load a then MAC b.
	u, st := newTestUnit(1)
	st.Write(0, []int32{1, 1, 1, 1})
	st.Write(1, []int32{2, 3, 4, 5})
	u.Exec(isa.Request{Kind: isa.KindPIMLoad, Addr: 0, TSlot: 0})
	u.Exec(isa.Request{Kind: isa.KindPIMCompute, Op: isa.OpMAC, Addr: 1, TSlot: 0, Imm: 10})
	u.Exec(isa.Request{Kind: isa.KindPIMStore, Addr: 2, TSlot: 0})
	if got := st.Read(2); got[3] != 51 {
		t.Fatalf("triad result = %v, want [21 31 41 51]", got)
	}
}

func TestUnitErrors(t *testing.T) {
	u, _ := newTestUnit(1)
	if err := u.Exec(isa.Request{Kind: isa.KindPIMLoad, TSlot: 1}); err == nil {
		t.Error("out-of-range TS slot accepted")
	}
	if err := u.Exec(isa.Request{Kind: isa.KindPIMLoad, Channel: 3}); err == nil {
		t.Error("wrong-channel command accepted")
	}
	if err := u.Exec(isa.Request{Kind: isa.KindOrderLight}); err == nil {
		t.Error("OrderLight accepted as executable command")
	}
	if err := u.Exec(isa.Request{Kind: isa.KindHostLoad}); err == nil {
		t.Error("host access accepted by PIM unit")
	}
}

func TestUnitSlotIsolation(t *testing.T) {
	u, st := newTestUnit(2)
	st.Write(0, []int32{9, 9, 9, 9})
	u.Exec(isa.Request{Kind: isa.KindPIMLoad, Addr: 0, TSlot: 0})
	got := u.Slot(0)
	got[0] = -1
	if u.Slot(0)[0] != 9 {
		t.Fatal("Slot() must return a copy")
	}
	if u.Slot(1)[0] != 0 {
		t.Fatal("unrelated slot contaminated")
	}
}

func TestReplayMatchesManualExecution(t *testing.T) {
	// Replay on a cloned store must produce the same final state as
	// manual Exec on the original.
	st := dram.NewStore(4)
	st.Write(0, []int32{1, 2, 3, 4})
	st.Write(1, []int32{5, 6, 7, 8})
	reqs := []isa.Request{
		{Kind: isa.KindPIMLoad, Addr: 0, TSlot: 0},
		{Kind: isa.KindOrderLight}, // skipped functionally
		{Kind: isa.KindPIMCompute, Op: isa.OpAdd, Addr: 1, TSlot: 0},
		{Kind: isa.KindFence}, // skipped functionally
		{Kind: isa.KindPIMStore, Addr: 2, TSlot: 0},
		{Kind: isa.KindHostLoad, Addr: 0}, // ignored
	}
	ref := st.Clone()
	if err := Replay(ref, 0, 1, reqs); err != nil {
		t.Fatal(err)
	}
	u := NewUnit(0, 1, st)
	for _, r := range reqs {
		if r.Kind.IsPIM() {
			if err := u.Exec(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !st.Equal(ref) {
		t.Fatalf("replay diverged from manual execution: %v", st.Diff(ref, 4))
	}
}

// TestReplayOrderSensitivityProperty: swapping a dependent pair (a load
// into a slot and the store of that slot) changes the result whenever
// the loaded values differ — demonstrating that the functional model
// actually detects reorderings.
func TestReplayOrderSensitivityProperty(t *testing.T) {
	f := func(av, bv int32) bool {
		if av == bv {
			return true // identical data cannot expose reordering
		}
		mk := func() *dram.Store {
			st := dram.NewStore(4)
			st.Write(0, []int32{av, av, av, av})
			st.Write(1, []int32{bv, bv, bv, bv})
			return st
		}
		prog := []isa.Request{
			{Kind: isa.KindPIMLoad, Addr: 0, TSlot: 0},
			{Kind: isa.KindPIMStore, Addr: 2, TSlot: 0},
			{Kind: isa.KindPIMLoad, Addr: 1, TSlot: 0}, // next tile reuses the slot
			{Kind: isa.KindPIMStore, Addr: 3, TSlot: 0},
		}
		good := mk()
		if err := Replay(good, 0, 1, prog); err != nil {
			return false
		}
		// Reorder: the second tile's load overtakes the first tile's
		// store (the exact hazard OrderLight exists to prevent).
		bad := mk()
		reordered := []isa.Request{prog[0], prog[2], prog[1], prog[3]}
		if err := Replay(bad, 0, 1, reordered); err != nil {
			return false
		}
		return !good.Equal(bad)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package pim

import (
	"fmt"

	"orderlight/internal/isa"
)

// UnitState is a PIM unit's checkpointable state: the temporary-storage
// slots, the deferred-execution queue and the per-kind execution
// counters. The backing store is checkpointed separately (it is shared
// machine-wide), so UnitState deliberately excludes it.
type UnitState struct {
	Slots    [][]int32
	Deferred []DeferredState
	Executed map[isa.Kind]int64
}

// DeferredState is one deferred command and its due cycle.
type DeferredState struct {
	R   isa.Request
	Due int64
}

// State deep-copies the unit's mutable state.
func (u *Unit) State() UnitState {
	s := UnitState{
		Slots:    make([][]int32, len(u.slots)),
		Executed: make(map[isa.Kind]int64, len(u.Executed)),
	}
	for i, sl := range u.slots {
		s.Slots[i] = append([]int32(nil), sl...)
	}
	for _, d := range u.deferred {
		s.Deferred = append(s.Deferred, DeferredState{R: d.r, Due: d.due})
	}
	for k, n := range u.Executed {
		s.Executed[k] = n
	}
	return s
}

// Restore replaces the unit's mutable state with the snapshot.
func (u *Unit) Restore(s UnitState) error {
	if len(s.Slots) != len(u.slots) {
		return fmt.Errorf("pim: snapshot has %d TS slots, unit has %d", len(s.Slots), len(u.slots))
	}
	for i, sl := range s.Slots {
		if len(sl) != u.lanes {
			return fmt.Errorf("pim: snapshot TS slot %d has %d lanes, unit has %d", i, len(sl), u.lanes)
		}
		copy(u.slots[i], sl)
	}
	u.deferred = u.deferred[:0]
	for _, d := range s.Deferred {
		u.deferred = append(u.deferred, deferredCmd{r: d.R, due: d.Due})
	}
	u.Executed = make(map[isa.Kind]int64, len(s.Executed))
	for k, n := range s.Executed {
		u.Executed[k] = n
	}
	return nil
}

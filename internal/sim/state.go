package sim

import "fmt"

// This file is the sim layer's checkpoint surface: exported snapshot
// structs plus State/Restore pairs for the engine, clocks, pipes and
// queues. Snapshots are taken between engine steps, where every
// component's state is complete (no edge is half-fired), and restoring
// one onto a freshly constructed twin reproduces the original event
// sequence exactly. Restore methods validate structural compatibility
// and deep-copy, so a snapshot can outlive the component it came from.

// ClockState is one clock domain's checkpointable state: the edge
// counter and the time of the next edge. The name is carried for
// identity validation on restore.
type ClockState struct {
	Name  string
	Cycle int64
	Next  Time
}

// EngineState is the engine's checkpointable state: current time plus
// every clock domain in registration order.
type EngineState struct {
	Now    Time
	Clocks []ClockState
}

// State captures the engine and all registered clocks.
func (e *Engine) State() EngineState {
	s := EngineState{Now: e.now, Clocks: make([]ClockState, len(e.clocks))}
	for i, c := range e.clocks {
		s.Clocks[i] = ClockState{Name: c.name, Cycle: c.cycle, Next: c.next}
	}
	return s
}

// Restore rewinds the engine to a captured state. The clock set of the
// restored engine must match the snapshot in count, order and name —
// a mismatch means the snapshot came from a different machine shape.
func (e *Engine) Restore(s EngineState) error {
	if len(s.Clocks) != len(e.clocks) {
		return fmt.Errorf("sim: snapshot has %d clock domains, engine has %d", len(s.Clocks), len(e.clocks))
	}
	for i, c := range e.clocks {
		if s.Clocks[i].Name != c.name {
			return fmt.Errorf("sim: snapshot clock %d is %q, engine has %q", i, s.Clocks[i].Name, c.name)
		}
	}
	e.now = s.Now
	for i, c := range e.clocks {
		c.cycle = s.Clocks[i].Cycle
		c.next = s.Clocks[i].Next
		c.pending = 0 // scratch; recomputed by the next scanNext
	}
	return nil
}

// PipeEntryState is one in-flight pipe entry: its payload and the time
// it becomes visible to the consumer.
type PipeEntryState[T any] struct {
	Ready Time
	V     T
}

// PipeState is a pipe's checkpointable state: the in-flight entries in
// FIFO order. Latency and capacity are construction parameters, not
// state, so a snapshot restores onto any identically configured pipe.
type PipeState[T any] struct {
	Entries []PipeEntryState[T]
}

// State captures the in-flight entries in order.
func (p *Pipe[T]) State() PipeState[T] {
	s := PipeState[T]{}
	if p.n > 0 {
		s.Entries = make([]PipeEntryState[T], p.n)
		for i := 0; i < p.n; i++ {
			e := p.buf[(p.head+i)%len(p.buf)]
			s.Entries[i] = PipeEntryState[T]{Ready: e.ready, V: e.v}
		}
	}
	return s
}

// Restore replaces the pipe's contents with the snapshot. It fails if
// the snapshot holds more entries than a bounded pipe can carry.
func (p *Pipe[T]) Restore(s PipeState[T]) error {
	if p.cap > 0 && len(s.Entries) > p.cap {
		return fmt.Errorf("sim: snapshot has %d pipe entries, capacity is %d", len(s.Entries), p.cap)
	}
	if len(s.Entries) > len(p.buf) {
		p.buf = make([]pipeEntry[T], len(s.Entries))
	} else {
		for i := range p.buf {
			p.buf[i] = pipeEntry[T]{}
		}
	}
	p.head = 0
	p.n = len(s.Entries)
	for i, e := range s.Entries {
		p.buf[i] = pipeEntry[T]{ready: e.Ready, v: e.V}
	}
	return nil
}

// State captures the queued entries in FIFO order.
func (q *Queue[T]) State() []T {
	if q.n == 0 {
		return nil
	}
	out := make([]T, q.n)
	for i := 0; i < q.n; i++ {
		out[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	return out
}

// Restore replaces the queue's contents with the snapshot. It fails if
// the snapshot holds more entries than a bounded queue can carry.
func (q *Queue[T]) Restore(entries []T) error {
	if q.cap > 0 && len(entries) > q.cap {
		return fmt.Errorf("sim: snapshot has %d queue entries, capacity is %d", len(entries), q.cap)
	}
	if len(entries) > len(q.buf) {
		q.buf = make([]T, len(entries))
	} else {
		var zero T
		for i := range q.buf {
			q.buf[i] = zero
		}
	}
	q.head = 0
	q.n = len(entries)
	copy(q.buf, entries)
	return nil
}

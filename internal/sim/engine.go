package sim

import (
	"errors"
	"fmt"
	"strings"
)

// ErrDeadline is returned by Engine.Run when the completion predicate did
// not become true before the configured horizon.
var ErrDeadline = errors.New("sim: run exceeded deadline without completing")

// Engine multiplexes one or more clock domains over the shared base-tick
// timeline. On every step it fires the earliest *actionable* clock edge:
// domains whose tickers all report quiescence (via the Worker interface)
// are warped over their dead cycles instead of firing empty edges one
// period at a time. When several domains share an edge time, they fire in
// the order they were added, which keeps the simulation deterministic.
//
// Skip-ahead never changes results: hints are recomputed from current
// state on every step, a too-early hint just fires a no-op edge exactly
// as the dense engine would, and Skipper tickers are credited the elided
// cycles so per-idle-cycle statistics stay byte-identical. SetDense(true)
// restores the naive fire-every-edge engine for cross-checking.
type Engine struct {
	now    Time
	clocks []*Clock
	dense  bool
}

// NewEngine creates an engine with no clocks.
func NewEngine() *Engine { return &Engine{} }

// AddClock creates and registers a clock domain with the given period.
func (e *Engine) AddClock(name string, period Time) *Clock {
	c := NewClock(name, period)
	e.clocks = append(e.clocks, c)
	return c
}

// Now returns the current simulated time in base ticks.
func (e *Engine) Now() Time { return e.now }

// SetDense toggles the naive dense engine: every clock edge fires even
// when all tickers are quiescent. Results are identical either way; the
// dense engine exists as the reference for parity tests and as an escape
// hatch when debugging a suspect NextWork hint.
func (e *Engine) SetDense(d bool) { e.dense = d }

// Dense reports whether the naive dense engine is active.
func (e *Engine) Dense() bool { return e.dense }

// scanNext computes each clock's next actionable edge (cached on the
// clock for fireAt) and returns the earliest. When every domain reports
// full quiescence the scan falls back to the earliest raw edge, so an
// idle simulation still creeps forward dense-style toward its deadline
// instead of jumping to infinity. This helper is the single next-edge
// scan shared by Step and RunFor.
func (e *Engine) scanNext() Time {
	next := TimeInf
	for _, c := range e.clocks {
		c.pending = c.workEdge(e.dense)
		if c.pending < next {
			next = c.pending
		}
	}
	if next == TimeInf {
		for _, c := range e.clocks {
			c.pending = c.next
			if c.pending < next {
				next = c.pending
			}
		}
	}
	return next
}

// fireAt warps time to t and fires every clock whose pending edge lands
// on that instant, in registration order.
func (e *Engine) fireAt(t Time) {
	e.now = t
	for _, c := range e.clocks {
		if c.pending == t {
			c.advanceTo(t)
			c.edge()
		}
	}
}

// Step advances to the next actionable clock edge and fires every clock
// whose edge lands on that instant. It reports false when there are no
// clocks at all.
func (e *Engine) Step() bool {
	if len(e.clocks) == 0 {
		return false
	}
	e.fireAt(e.scanNext())
	return true
}

// Run steps the simulation until done() reports true (checked between
// steps) or the deadline in base ticks passes, in which case ErrDeadline
// is returned wrapped with the elapsed time and a report of what each
// clock domain was still waiting on.
func (e *Engine) Run(done func() bool, deadline Time) error {
	for !done() {
		if e.now >= deadline {
			return e.DeadlineError()
		}
		if !e.Step() {
			return errors.New("sim: no clocks registered")
		}
	}
	return nil
}

// RunUntil steps the simulation until done() reports true or the next
// actionable edge lies beyond limit, whichever comes first, and reports
// whether done() became true. Unlike RunFor it never warps now to the
// limit: the engine stops *between* events with every clock untouched,
// so a later RunUntil (or Run) continues with exactly the event sequence
// an uninterrupted run would have produced. This is the windowed run
// primitive behind checkpointing, abort polling, and halt-at-cycle.
func (e *Engine) RunUntil(done func() bool, limit Time) (bool, error) {
	for !done() {
		if len(e.clocks) == 0 {
			return false, errors.New("sim: no clocks registered")
		}
		next := e.scanNext()
		if next > limit {
			return false, nil
		}
		e.fireAt(next)
	}
	return true, nil
}

// DeadlineError builds the error Run returns when the deadline passes:
// ErrDeadline wrapped with the elapsed time and the pending-work report.
// Exported so windowed runners can fail identically to Run.
func (e *Engine) DeadlineError() error {
	return fmt.Errorf("%w (t=%v; %s)", ErrDeadline, e.now, e.pendingReport())
}

// pendingReport describes, per clock domain, the next edge at which it
// still expects work — the context a deadline error needs to point at
// the stuck component.
func (e *Engine) pendingReport() string {
	if len(e.clocks) == 0 {
		return "no clock domains"
	}
	var b strings.Builder
	b.WriteString("pending: ")
	for i, c := range e.clocks {
		if i > 0 {
			b.WriteString(", ")
		}
		switch t := c.workEdge(e.dense); {
		case t == TimeInf:
			fmt.Fprintf(&b, "%s idle at cycle %d", c.name, c.cycle)
		default:
			fmt.Fprintf(&b, "%s has work at t=%v (cycle %d)", c.name, t, c.cycle)
		}
	}
	return b.String()
}

// RunFor advances the simulation by the given number of base ticks,
// firing every actionable edge inside the window.
func (e *Engine) RunFor(d Time) {
	end := e.now + d
	for len(e.clocks) > 0 {
		next := e.scanNext()
		if next > end {
			break
		}
		e.fireAt(next)
	}
	e.now = end
}

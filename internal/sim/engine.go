package sim

import (
	"errors"
	"fmt"
)

// ErrDeadline is returned by Engine.Run when the completion predicate did
// not become true before the configured horizon.
var ErrDeadline = errors.New("sim: run exceeded deadline without completing")

// Engine multiplexes one or more clock domains over the shared base-tick
// timeline. On every step it fires the earliest pending clock edge; when
// several domains share an edge time, they fire in the order they were
// added, which keeps the simulation deterministic.
type Engine struct {
	now    Time
	clocks []*Clock
}

// NewEngine creates an engine with no clocks.
func NewEngine() *Engine { return &Engine{} }

// AddClock creates and registers a clock domain with the given period.
func (e *Engine) AddClock(name string, period Time) *Clock {
	c := NewClock(name, period)
	e.clocks = append(e.clocks, c)
	return c
}

// Now returns the current simulated time in base ticks.
func (e *Engine) Now() Time { return e.now }

// Step advances to the next pending clock edge and fires every clock
// whose edge lands on that instant. It reports false when there are no
// clocks at all.
func (e *Engine) Step() bool {
	if len(e.clocks) == 0 {
		return false
	}
	next := TimeInf
	for _, c := range e.clocks {
		if c.next < next {
			next = c.next
		}
	}
	e.now = next
	for _, c := range e.clocks {
		if c.next == next {
			c.edge()
		}
	}
	return true
}

// Run steps the simulation until done() reports true (checked between
// steps) or the deadline in base ticks passes, in which case ErrDeadline
// is returned wrapped with the elapsed time.
func (e *Engine) Run(done func() bool, deadline Time) error {
	for !done() {
		if e.now >= deadline {
			return fmt.Errorf("%w (t=%v)", ErrDeadline, e.now)
		}
		if !e.Step() {
			return errors.New("sim: no clocks registered")
		}
	}
	return nil
}

// RunFor advances the simulation by the given number of base ticks,
// firing every edge inside the window.
func (e *Engine) RunFor(d Time) {
	end := e.now + d
	for {
		next := TimeInf
		for _, c := range e.clocks {
			if c.next < next {
				next = c.next
			}
		}
		if next > end || next == TimeInf {
			e.now = end
			return
		}
		e.Step()
	}
}

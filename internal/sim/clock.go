package sim

// Ticker is a component driven by a Clock. Tick is called exactly once
// per clock cycle, in registration order, with the current cycle number.
type Ticker interface {
	Tick(cycle int64)
}

// TickFunc adapts a plain function to the Ticker interface.
type TickFunc func(cycle int64)

// Tick implements Ticker.
func (f TickFunc) Tick(cycle int64) { f(cycle) }

// Clock is one clock domain: a fixed period in base ticks and an ordered
// set of Tickers that are advanced together on every rising edge.
// Registration order is the evaluation order within a cycle, which keeps
// runs deterministic.
type Clock struct {
	name    string
	period  Time
	cycle   int64
	next    Time
	tickers []Ticker
}

// NewClock creates a clock with the given period in base ticks. The first
// edge fires at time 0.
func NewClock(name string, period Time) *Clock {
	if period <= 0 {
		panic("sim: clock period must be positive")
	}
	return &Clock{name: name, period: period}
}

// Name returns the clock's name (for tracing).
func (c *Clock) Name() string { return c.name }

// Period returns the clock period in base ticks.
func (c *Clock) Period() Time { return c.period }

// Cycle returns the number of edges that have fired so far.
func (c *Clock) Cycle() int64 { return c.cycle }

// NextEdge returns the time of the next rising edge.
func (c *Clock) NextEdge() Time { return c.next }

// Register appends a ticker to the domain. Must not be called after the
// engine starts running if deterministic replay matters.
func (c *Clock) Register(t Ticker) { c.tickers = append(c.tickers, t) }

// edge fires one clock edge: all tickers run with the current cycle
// number, then the cycle counter and next-edge time advance.
func (c *Clock) edge() {
	for _, t := range c.tickers {
		t.Tick(c.cycle)
	}
	c.cycle++
	c.next += c.period
}

package sim

// Ticker is a component driven by a Clock. Tick is called exactly once
// per clock cycle, in registration order, with the current cycle number.
type Ticker interface {
	Tick(cycle int64)
}

// TickFunc adapts a plain function to the Ticker interface.
type TickFunc func(cycle int64)

// Tick implements Ticker.
func (f TickFunc) Tick(cycle int64) { f(cycle) }

// NoWork is the NextWork return value meaning "quiescent until external
// input arrives": the component will never change state again on its own.
// It equals TimeInf so min-aggregation works across cycle and time units.
const NoWork int64 = int64(TimeInf)

// Worker is a Ticker that can additionally report quiescence. NextWork
// returns the earliest cycle >= the given one at which Tick could change
// any state or statistic. Returning the current cycle means "tick me
// now"; returning NoWork means "idle until some other domain feeds me".
// A hint is allowed to be early (the engine fires a no-op edge, exactly
// as the dense engine would) but must never be late: skipping a cycle
// where Tick would have acted changes results.
type Worker interface {
	Ticker
	NextWork(cycle int64) int64
}

// Skipper is implemented by Workers that accrue per-idle-cycle state
// (e.g. stall-cycle statistics). When the engine warps a clock over n
// quiescent cycles it calls Skip(n) before the next Tick so those
// counters stay byte-identical with a dense run.
type Skipper interface {
	Skip(cycles int64)
}

// Clock is one clock domain: a fixed period in base ticks and an ordered
// set of Tickers that are advanced together on every rising edge.
// Registration order is the evaluation order within a cycle, which keeps
// runs deterministic.
type Clock struct {
	name      string
	period    Time
	cycle     int64
	next      Time
	tickers   []Ticker
	allHinted bool // every registered ticker implements Worker
	pending   Time // scratch: next actionable edge, set by Engine.scanNext
}

// NewClock creates a clock with the given period in base ticks. The first
// edge fires at time 0.
func NewClock(name string, period Time) *Clock {
	if period <= 0 {
		panic("sim: clock period must be positive")
	}
	return &Clock{name: name, period: period, allHinted: true}
}

// Name returns the clock's name (for tracing).
func (c *Clock) Name() string { return c.name }

// Period returns the clock period in base ticks.
func (c *Clock) Period() Time { return c.period }

// Cycle returns the number of edges that have fired so far.
func (c *Clock) Cycle() int64 { return c.cycle }

// NextEdge returns the time of the next rising edge.
func (c *Clock) NextEdge() Time { return c.next }

// Register appends a ticker to the domain. Must not be called after the
// engine starts running if deterministic replay matters. A domain with
// any non-Worker ticker runs dense (every edge fires), because the
// engine cannot prove such a ticker quiescent.
func (c *Clock) Register(t Ticker) {
	c.tickers = append(c.tickers, t)
	if _, ok := t.(Worker); !ok {
		c.allHinted = false
	}
}

// edge fires one clock edge: all tickers run with the current cycle
// number, then the cycle counter and next-edge time advance.
func (c *Clock) edge() {
	for _, t := range c.tickers {
		t.Tick(c.cycle)
	}
	c.cycle++
	c.next += c.period
}

// workEdge returns the earliest edge time at which some ticker has work.
// It is c.next when any ticker wants the upcoming cycle (or the domain
// runs dense), a later edge when every ticker agrees the next w-cycle gap
// is dead time, and TimeInf when the whole domain is quiescent.
func (c *Clock) workEdge(dense bool) Time {
	if dense || !c.allHinted {
		return c.next
	}
	earliest := NoWork
	for _, t := range c.tickers {
		n := t.(Worker).NextWork(c.cycle)
		if n <= c.cycle {
			return c.next
		}
		if n < earliest {
			earliest = n
		}
	}
	if earliest == NoWork {
		return TimeInf
	}
	return c.next + Time(earliest-c.cycle)*c.period
}

// advanceTo warps the clock to the edge at time t without firing the
// intervening (provably empty) edges. Skipper tickers are credited the
// elided cycles first so per-idle-cycle statistics stay exact. The
// invariant next == cycle*period is preserved: t is always a multiple of
// the period because workEdge builds it from c.next.
func (c *Clock) advanceTo(t Time) {
	if t == c.next {
		return
	}
	k := int64((t - c.next) / c.period)
	for _, tk := range c.tickers {
		if s, ok := tk.(Skipper); ok {
			s.Skip(k)
		}
	}
	c.cycle += k
	c.next += Time(k) * c.period
}

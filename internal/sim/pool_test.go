package sim

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryTask(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		p := NewPool(workers)
		for round := 0; round < 50; round++ {
			n := p.Workers()
			var sum atomic.Int64
			tasks := make([]func(), n)
			for i := range tasks {
				v := int64(i + 1)
				tasks[i] = func() { sum.Add(v) }
			}
			p.Run(tasks)
			// The barrier guarantees every task finished before Run
			// returned, so the sum is exact, not eventual.
			if want := int64(n) * int64(n+1) / 2; sum.Load() != want {
				t.Fatalf("workers=%d round %d: sum = %d, want %d", workers, round, sum.Load(), want)
			}
		}
		p.Close()
	}
}

func TestPoolInlineMode(t *testing.T) {
	// nil pools and pools below two workers run everything on the caller,
	// in order — the sequential degenerate mode.
	for _, p := range []*Pool{nil, NewPool(0), NewPool(1)} {
		if p.Workers() != 1 {
			t.Fatalf("Workers() = %d, want 1", p.Workers())
		}
		var order []int
		p.Run([]func(){
			func() { order = append(order, 1) },
			func() { order = append(order, 2) },
			func() { order = append(order, 3) },
		})
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Fatalf("inline pool ran tasks as %v, want [1 2 3]", order)
		}
		p.Close() // must be a no-op, not a panic
	}
}

func TestPoolHappensBefore(t *testing.T) {
	// Plain (non-atomic) writes inside tasks must be visible to the
	// caller after Run: the channel handoffs carry the edge. Run under
	// -race this is a real check, not a formality.
	p := NewPool(4)
	defer p.Close()
	buf := make([]int, 4)
	for round := 0; round < 200; round++ {
		tasks := make([]func(), 4)
		for i := range tasks {
			i := i
			tasks[i] = func() { buf[i] = round + i }
		}
		p.Run(tasks)
		for i := range buf {
			if buf[i] != round+i {
				t.Fatalf("round %d: buf[%d] = %d, want %d", round, i, buf[i], round+i)
			}
		}
	}
}

func TestPoolRejectsOversizedBatch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run with more tasks than workers did not panic")
		}
	}()
	p.Run([]func(){func() {}, func() {}, func() {}})
}

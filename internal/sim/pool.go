package sim

// Pool is a persistent fork-join worker pool for the parallel engine's
// intra-tick shard regions. It exists because a fired clock edge is a
// very small unit of work: spawning goroutines per tick would dominate
// the tick itself, so the pool keeps its workers parked on a channel
// receive and reuses them for every barrier.
//
// Run is a strict barrier: it hands each task to a worker (running the
// last one inline on the caller), waits for all of them, and only then
// returns. The channel handoffs give the caller a happens-before edge
// over everything the tasks wrote, so no other synchronization is
// needed around shard state.
//
// A Pool with fewer than two workers runs every task inline on the
// calling goroutine, in order — the degenerate sequential mode used
// when GOMAXPROCS (or the configured shard count) is 1.
type Pool struct {
	workers int
	tasks   chan func()
	fin     chan struct{}
	quit    chan struct{}
}

// NewPool creates a pool with n workers. n < 2 yields an inline pool
// that runs tasks on the caller and owns no goroutines.
func NewPool(n int) *Pool {
	p := &Pool{workers: n}
	if n < 2 {
		return p
	}
	p.tasks = make(chan func(), n)
	p.fin = make(chan struct{}, n)
	p.quit = make(chan struct{})
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for {
		select {
		case fn := <-p.tasks:
			fn()
			p.fin <- struct{}{}
		case <-p.quit:
			return
		}
	}
}

// Workers returns the pool's worker count (minimum 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 2 {
		return 1
	}
	return p.workers
}

// Run executes every task and returns once all have finished. Tasks
// must not call Run on the same pool, and at most Workers() tasks may
// be passed per call. A nil or inline pool runs the tasks sequentially
// on the caller.
func (p *Pool) Run(tasks []func()) {
	if p == nil || p.workers < 2 || len(tasks) < 2 {
		for _, fn := range tasks {
			fn()
		}
		return
	}
	if len(tasks) > p.workers {
		panic("sim: pool Run with more tasks than workers")
	}
	// Ship all but the last task to workers; run the last inline so the
	// caller's core contributes instead of blocking immediately.
	for _, fn := range tasks[:len(tasks)-1] {
		p.tasks <- fn
	}
	tasks[len(tasks)-1]()
	for range tasks[:len(tasks)-1] {
		<-p.fin
	}
}

// Close stops the workers. The pool must be idle; Run must not be
// called again. Closing a nil or inline pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.workers < 2 {
		return
	}
	close(p.quit)
}

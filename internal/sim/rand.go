package sim

// Rand is a small deterministic pseudo-random generator (SplitMix64)
// used for scheduler tie-breaking and adversarial reordering injection.
// It is reproducible from its seed and safe to embed by value.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// State returns the generator's internal state for checkpointing.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a state previously returned by State, after which
// the generator reproduces the same sequence it would have continued.
func (r *Rand) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns a uniform boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

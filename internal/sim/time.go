package sim

import "fmt"

// Time is a point in simulated time, measured in base ticks.
type Time int64

// TimeInf is a sentinel meaning "never" / "no pending event".
const TimeInf Time = 1<<63 - 1

// BaseTickHz is the frequency of the base tick domain. It is the least
// common multiple of the 1200 MHz core clock and the 850 MHz memory
// clock used by the paper's Table 1 configuration (GCD 50 MHz).
const BaseTickHz = 20_400_000_000

// Base-tick periods of the two Table 1 clock domains.
const (
	// CoreTicks is the number of base ticks per 1200 MHz core cycle.
	CoreTicks Time = 17
	// MemTicks is the number of base ticks per 850 MHz memory cycle.
	MemTicks Time = 24
)

// Seconds converts a tick count to seconds of simulated time.
func (t Time) Seconds() float64 { return float64(t) / BaseTickHz }

// Nanoseconds converts a tick count to nanoseconds of simulated time.
func (t Time) Nanoseconds() float64 { return t.Seconds() * 1e9 }

// Milliseconds converts a tick count to milliseconds of simulated time.
func (t Time) Milliseconds() float64 { return t.Seconds() * 1e3 }

// CoreCycles reports how many full core-clock cycles fit in t.
func (t Time) CoreCycles() int64 { return int64(t / CoreTicks) }

// MemCycles reports how many full memory-clock cycles fit in t.
func (t Time) MemCycles() int64 { return int64(t / MemTicks) }

// String renders the time in a human-friendly unit.
func (t Time) String() string {
	switch {
	case t == TimeInf:
		return "inf"
	case t.Seconds() >= 1e-3:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t.Seconds() >= 1e-6:
		return fmt.Sprintf("%.3fus", t.Seconds()*1e6)
	default:
		return fmt.Sprintf("%.1fns", t.Nanoseconds())
	}
}

package sim

// Pipe is an order-preserving latency FIFO: an entry pushed at time t
// becomes visible to the consumer no earlier than t+latency, and entries
// always emerge in push order. It models fixed-latency, in-order
// transport such as the SM-to-L2 interconnect hop or the L2-to-DRAM
// scheduler path of Figure 6. A capacity bound provides backpressure.
//
// The backing store is a ring buffer: Push and Pop are O(1) and, once
// the buffer has grown to the high-water mark of the run (immediately,
// for bounded pipes), steady-state traffic allocates nothing.
type Pipe[T any] struct {
	latency Time
	cap     int
	buf     []pipeEntry[T]
	head    int
	n       int
}

type pipeEntry[T any] struct {
	ready Time
	v     T
}

// NewPipe creates a pipe with the given transport latency in base ticks
// and capacity in entries. capacity <= 0 means unbounded. Bounded pipes
// allocate their full backing store up front and never reallocate.
func NewPipe[T any](latency Time, capacity int) *Pipe[T] {
	p := &Pipe[T]{latency: latency, cap: capacity}
	if capacity > 0 {
		p.buf = make([]pipeEntry[T], capacity)
	}
	return p
}

// Latency returns the transport latency in base ticks.
func (p *Pipe[T]) Latency() Time { return p.latency }

// Len returns the number of in-flight entries.
func (p *Pipe[T]) Len() int { return p.n }

// CanPush reports whether the pipe has room for another entry.
func (p *Pipe[T]) CanPush() bool { return p.cap <= 0 || p.n < p.cap }

// Push inserts v at time now. It panics if the pipe is full; callers must
// check CanPush first (backpressure is part of the model).
func (p *Pipe[T]) Push(now Time, v T) {
	if !p.CanPush() {
		panic("sim: push into full pipe")
	}
	if p.n == len(p.buf) {
		p.grow()
	}
	p.buf[(p.head+p.n)%len(p.buf)] = pipeEntry[T]{ready: now + p.latency, v: v}
	p.n++
}

func (p *Pipe[T]) grow() {
	nc := 2 * len(p.buf)
	if nc < 4 {
		nc = 4
	}
	buf := make([]pipeEntry[T], nc)
	for i := 0; i < p.n; i++ {
		buf[i] = p.buf[(p.head+i)%len(p.buf)]
	}
	p.buf = buf
	p.head = 0
}

// Peek returns the oldest entry if it has arrived by time now.
func (p *Pipe[T]) Peek(now Time) (T, bool) {
	if p.n == 0 || p.buf[p.head].ready > now {
		var zero T
		return zero, false
	}
	return p.buf[p.head].v, true
}

// NextReady returns the arrival time of the oldest in-flight entry, or
// TimeInf when the pipe is empty. It is the pipe's quiescence hint: the
// consumer cannot observe any change before that instant.
func (p *Pipe[T]) NextReady() Time {
	if p.n == 0 {
		return TimeInf
	}
	return p.buf[p.head].ready
}

// Pop removes and returns the oldest entry if it has arrived by time now.
func (p *Pipe[T]) Pop(now Time) (T, bool) {
	v, ok := p.Peek(now)
	if !ok {
		return v, false
	}
	p.buf[p.head] = pipeEntry[T]{}
	p.head = (p.head + 1) % len(p.buf)
	p.n--
	return v, true
}

// Drain removes and returns every entry that has arrived by time now, in
// order.
func (p *Pipe[T]) Drain(now Time) []T {
	var out []T
	for {
		v, ok := p.Pop(now)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Queue is a bounded zero-latency FIFO used for the finite hardware
// queues of the model (LDST queue, L2 queues, memory-controller
// read/write queues). capacity <= 0 means unbounded. Like Pipe it is a
// ring buffer: Push and Pop are O(1) and allocation-free at steady
// state; only the out-of-order RemoveAt pays a shift.
type Queue[T any] struct {
	cap  int
	buf  []T
	head int
	n    int
}

// NewQueue creates a queue with the given capacity in entries. Bounded
// queues allocate their full backing store up front.
func NewQueue[T any](capacity int) *Queue[T] {
	q := &Queue[T]{cap: capacity}
	if capacity > 0 {
		q.buf = make([]T, capacity)
	}
	return q
}

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return q.n }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

// CanPush reports whether the queue has room for another entry.
func (q *Queue[T]) CanPush() bool { return q.cap <= 0 || q.n < q.cap }

// Push appends v. It panics if the queue is full.
func (q *Queue[T]) Push(v T) {
	if !q.CanPush() {
		panic("sim: push into full queue")
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

func (q *Queue[T]) grow() {
	nc := 2 * len(q.buf)
	if nc < 4 {
		nc = 4
	}
	buf := make([]T, nc)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Peek returns the oldest entry without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest entry.
func (q *Queue[T]) Pop() (T, bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}

// At returns the i-th oldest entry (0 = head). It panics if out of range.
func (q *Queue[T]) At(i int) T {
	if i < 0 || i >= q.n {
		panic("sim: queue index out of range")
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// RemoveAt removes and returns the i-th oldest entry, preserving the
// order of the others. Used by out-of-order pickers such as FR-FCFS.
func (q *Queue[T]) RemoveAt(i int) T {
	if i < 0 || i >= q.n {
		panic("sim: queue index out of range")
	}
	m := len(q.buf)
	v := q.buf[(q.head+i)%m]
	for j := i; j < q.n-1; j++ {
		q.buf[(q.head+j)%m] = q.buf[(q.head+j+1)%m]
	}
	q.n--
	var zero T
	q.buf[(q.head+q.n)%m] = zero
	return v
}

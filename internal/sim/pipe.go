package sim

// Pipe is an order-preserving latency FIFO: an entry pushed at time t
// becomes visible to the consumer no earlier than t+latency, and entries
// always emerge in push order. It models fixed-latency, in-order
// transport such as the SM-to-L2 interconnect hop or the L2-to-DRAM
// scheduler path of Figure 6. A capacity bound provides backpressure.
type Pipe[T any] struct {
	latency Time
	cap     int
	q       []pipeEntry[T]
}

type pipeEntry[T any] struct {
	ready Time
	v     T
}

// NewPipe creates a pipe with the given transport latency in base ticks
// and capacity in entries. capacity <= 0 means unbounded.
func NewPipe[T any](latency Time, capacity int) *Pipe[T] {
	return &Pipe[T]{latency: latency, cap: capacity}
}

// Latency returns the transport latency in base ticks.
func (p *Pipe[T]) Latency() Time { return p.latency }

// Len returns the number of in-flight entries.
func (p *Pipe[T]) Len() int { return len(p.q) }

// CanPush reports whether the pipe has room for another entry.
func (p *Pipe[T]) CanPush() bool { return p.cap <= 0 || len(p.q) < p.cap }

// Push inserts v at time now. It panics if the pipe is full; callers must
// check CanPush first (backpressure is part of the model).
func (p *Pipe[T]) Push(now Time, v T) {
	if !p.CanPush() {
		panic("sim: push into full pipe")
	}
	p.q = append(p.q, pipeEntry[T]{ready: now + p.latency, v: v})
}

// Peek returns the oldest entry if it has arrived by time now.
func (p *Pipe[T]) Peek(now Time) (T, bool) {
	var zero T
	if len(p.q) == 0 || p.q[0].ready > now {
		return zero, false
	}
	return p.q[0].v, true
}

// Pop removes and returns the oldest entry if it has arrived by time now.
func (p *Pipe[T]) Pop(now Time) (T, bool) {
	v, ok := p.Peek(now)
	if !ok {
		return v, false
	}
	copy(p.q, p.q[1:])
	p.q = p.q[:len(p.q)-1]
	return v, true
}

// Drain removes and returns every entry that has arrived by time now, in
// order.
func (p *Pipe[T]) Drain(now Time) []T {
	var out []T
	for {
		v, ok := p.Pop(now)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Queue is a bounded zero-latency FIFO used for the finite hardware
// queues of the model (LDST queue, L2 queues, memory-controller
// read/write queues). capacity <= 0 means unbounded.
type Queue[T any] struct {
	cap int
	q   []T
}

// NewQueue creates a queue with the given capacity in entries.
func NewQueue[T any](capacity int) *Queue[T] { return &Queue[T]{cap: capacity} }

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return len(q.q) }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

// CanPush reports whether the queue has room for another entry.
func (q *Queue[T]) CanPush() bool { return q.cap <= 0 || len(q.q) < q.cap }

// Push appends v. It panics if the queue is full.
func (q *Queue[T]) Push(v T) {
	if !q.CanPush() {
		panic("sim: push into full queue")
	}
	q.q = append(q.q, v)
}

// Peek returns the oldest entry without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.q) == 0 {
		return zero, false
	}
	return q.q[0], true
}

// Pop removes and returns the oldest entry.
func (q *Queue[T]) Pop() (T, bool) {
	v, ok := q.Peek()
	if !ok {
		return v, false
	}
	copy(q.q, q.q[1:])
	q.q = q.q[:len(q.q)-1]
	return v, true
}

// At returns the i-th oldest entry (0 = head). It panics if out of range.
func (q *Queue[T]) At(i int) T { return q.q[i] }

// RemoveAt removes and returns the i-th oldest entry, preserving the
// order of the others. Used by out-of-order pickers such as FR-FCFS.
func (q *Queue[T]) RemoveAt(i int) T {
	v := q.q[i]
	copy(q.q[i:], q.q[i+1:])
	q.q = q.q[:len(q.q)-1]
	return v
}

// Package sim provides the deterministic discrete-time simulation
// kernel used by every other subsystem in the OrderLight reproduction.
//
// # Two clock domains, one integer timeline
//
// The simulated machine has two clock domains — the GPU core clock and
// the HBM memory clock of Table 1. To keep all arithmetic exact, time
// is measured in an integer number of base ticks whose frequency is the
// least common multiple of the two domain frequencies: with a 1200 MHz
// core and an 850 MHz memory clock the base tick runs at 20.4 GHz, so
// one core cycle is exactly 17 ticks (CoreTicks) and one memory cycle
// is exactly 24 ticks (MemTicks). All latencies in the model are
// integer tick counts and every run is fully deterministic, which is
// what lets the repo's parity tests demand byte-identical results
// across engines and worker-pool shapes.
//
// # Dense and quiescence skip-ahead engines
//
// The Engine fires clock edges in tick order. In dense mode every edge
// of every domain fires. In the default skip-ahead mode, a Clock whose
// Worker reports no work before some future time has its elided cycles
// credited in one Skip call — statistics accrue closed-form instead of
// by spinning — and the engine jumps straight to the next edge that can
// change state. Hints may be early (a no-op edge fires, exactly as the
// dense engine would) but never late; the dense engine is the parity
// reference that enforces this contract.
//
// # Building blocks
//
// Queue and Pipe are the bounded FIFO and fixed-latency pipe every
// stage of the Figure 6 memory path is assembled from. Every
// measurement in the paper's figures ultimately derives from the
// timestamps this package produces: execution times (Figures 10b, 12,
// 13), command bandwidths (Figures 10a, 11) and stall-cycle breakdowns
// all read the same integer timeline.
package sim

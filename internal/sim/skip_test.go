package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

// periodicWorker has work every `every`-th cycle until `rounds` rounds
// have fired; between rounds it is provably idle. Tick is a no-op on
// idle cycles (the contract that makes dense and skip-ahead equivalent);
// it records every cycle it actually worked and every Skip credit.
type periodicWorker struct {
	every   int64
	rounds  int64
	fired   []int64
	skipped int64 // total cycles credited via Skip
}

func (p *periodicWorker) Tick(cycle int64) {
	done := int64(len(p.fired))
	if done < p.rounds && cycle >= done*p.every {
		p.fired = append(p.fired, cycle)
	}
}

func (p *periodicWorker) NextWork(cycle int64) int64 {
	done := int64(len(p.fired))
	if done >= p.rounds {
		return NoWork
	}
	next := done * p.every
	if next < cycle {
		next = cycle
	}
	return next
}

func (p *periodicWorker) Skip(cycles int64) { p.skipped += cycles }

func TestEngineSkipsQuiescentCycles(t *testing.T) {
	e := NewEngine()
	clk := e.AddClock("core", 10)
	w := &periodicWorker{every: 7, rounds: 5}
	clk.Register(w)

	steps := 0
	for i := 0; i < 100 && len(w.fired) < int(w.rounds); i++ {
		e.Step()
		steps++
	}
	want := []int64{0, 7, 14, 21, 28}
	if len(w.fired) != len(want) {
		t.Fatalf("fired cycles %v, want %v", w.fired, want)
	}
	for i, cy := range want {
		if w.fired[i] != cy {
			t.Fatalf("fired cycles %v, want %v", w.fired, want)
		}
	}
	if steps != len(want) {
		t.Fatalf("took %d steps, want %d (one per work edge)", steps, len(want))
	}
	// Each 7-cycle round skips 6 idle cycles; the fifth round's trailing
	// gap was never entered.
	if w.skipped != 4*6 {
		t.Fatalf("Skip credited %d cycles, want 24", w.skipped)
	}
	// The invariant next == cycle*period must survive warping.
	if clk.NextEdge() != Time(clk.Cycle())*clk.Period() {
		t.Fatalf("next edge %d != cycle %d * period %d", clk.NextEdge(), clk.Cycle(), clk.Period())
	}
}

func TestEngineDenseMatchesSkipCycleNumbers(t *testing.T) {
	run := func(dense bool) (fired []int64, now Time) {
		e := NewEngine()
		e.SetDense(dense)
		clk := e.AddClock("core", 17)
		w := &periodicWorker{every: 5, rounds: 9}
		clk.Register(w)
		for clk.Cycle() < 41 {
			e.Step()
		}
		return w.fired, e.Now()
	}
	densFired, densNow := run(true)
	skipFired, skipNow := run(false)
	if len(densFired) != len(skipFired) {
		t.Fatalf("dense fired %d work cycles, skip fired %d", len(densFired), len(skipFired))
	}
	for i := range densFired {
		if densFired[i] != skipFired[i] {
			t.Fatalf("work cycle %d: dense %d, skip %d", i, densFired[i], skipFired[i])
		}
	}
	if densNow != skipNow {
		t.Fatalf("final time: dense %d, skip %d", densNow, skipNow)
	}
}

// TestEngineSkipParityProperty drives two clock domains of
// randomly-scheduled workers through the dense and skip-ahead engines
// and requires identical fire schedules.
func TestEngineSkipParityProperty(t *testing.T) {
	f := func(everyA, everyB uint8, roundsA, roundsB uint8) bool {
		mk := func() (*Engine, *periodicWorker, *periodicWorker) {
			e := NewEngine()
			a := &periodicWorker{every: int64(everyA%29) + 1, rounds: int64(roundsA % 40)}
			b := &periodicWorker{every: int64(everyB%29) + 1, rounds: int64(roundsB % 40)}
			e.AddClock("core", CoreTicks).Register(a)
			e.AddClock("mem", MemTicks).Register(b)
			return e, a, b
		}
		done := func(a, b *periodicWorker) func() bool {
			return func() bool {
				return int64(len(a.fired)) >= a.rounds && int64(len(b.fired)) >= b.rounds
			}
		}
		eS, aS, bS := mk()
		if err := eS.Run(done(aS, bS), TimeInf); err != nil {
			return false
		}
		eD, aD, bD := mk()
		eD.SetDense(true)
		if err := eD.Run(done(aD, bD), TimeInf); err != nil {
			return false
		}
		eq := func(x, y []int64) bool {
			if len(x) != len(y) {
				return false
			}
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		}
		return eq(aS.fired, aD.fired) && eq(bS.fired, bD.fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineUnhintedTickerForcesDense(t *testing.T) {
	e := NewEngine()
	clk := e.AddClock("core", 10)
	w := &periodicWorker{every: 50, rounds: 1}
	clk.Register(w)
	n := 0
	clk.Register(TickFunc(func(int64) { n++ })) // no NextWork: domain must run dense
	for clk.Cycle() < 10 {
		e.Step()
	}
	if n != 10 {
		t.Fatalf("unhinted domain fired %d edges over 10 cycles, want 10", n)
	}
	if w.skipped != 0 {
		t.Fatalf("Skip credited %d cycles in a dense domain, want 0", w.skipped)
	}
}

func TestEngineRunDeadlineReportsPendingDomains(t *testing.T) {
	e := NewEngine()
	e.AddClock("core", CoreTicks)
	e.AddClock("mem", MemTicks)
	err := e.Run(func() bool { return false }, 1000)
	if err == nil {
		t.Fatal("Run did not hit the deadline")
	}
	for _, name := range []string{"core", "mem"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("deadline error %q does not name the %q domain", err, name)
		}
	}
}

func TestEngineRunForSkipAhead(t *testing.T) {
	e := NewEngine()
	clk := e.AddClock("core", 10)
	w := &periodicWorker{every: 4, rounds: 100}
	clk.Register(w)
	e.RunFor(101) // work edges at cycles 0,4,8 → t=0,40,80; cycle 12 is past the window
	if e.Now() != 101 {
		t.Fatalf("Now() = %d, want 101", e.Now())
	}
	want := []int64{0, 4, 8}
	if len(w.fired) != len(want) {
		t.Fatalf("fired %v, want %v", w.fired, want)
	}
	for i := range want {
		if w.fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", w.fired, want)
		}
	}
}

func TestPipeRingWraparound(t *testing.T) {
	p := NewPipe[int](0, 3)
	next := 0
	popped := 0
	// Interleave pushes and pops far past the capacity so head wraps
	// many times.
	for round := 0; round < 50; round++ {
		for p.CanPush() {
			p.Push(Time(next), next)
			next++
		}
		for i := 0; i < 2; i++ {
			v, ok := p.Pop(TimeInf - 1)
			if !ok || v != popped {
				t.Fatalf("round %d: Pop = %d,%v, want %d,true", round, v, ok, popped)
			}
			popped++
		}
	}
	for {
		v, ok := p.Pop(TimeInf - 1)
		if !ok {
			break
		}
		if v != popped {
			t.Fatalf("drain: got %d, want %d", v, popped)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("popped %d of %d pushed", popped, next)
	}
}

func TestPipeNextReady(t *testing.T) {
	p := NewPipe[int](100, 0)
	if p.NextReady() != TimeInf {
		t.Fatal("empty pipe must report TimeInf")
	}
	p.Push(5, 1)
	p.Push(7, 2)
	if got := p.NextReady(); got != 105 {
		t.Fatalf("NextReady = %d, want 105", got)
	}
	p.Pop(105)
	if got := p.NextReady(); got != 107 {
		t.Fatalf("NextReady after pop = %d, want 107", got)
	}
}

func TestQueueRingWraparoundWithRemoveAt(t *testing.T) {
	q := NewQueue[int](4)
	q.Push(0)
	q.Push(1)
	q.Push(2)
	q.Pop() // head advances; ring now wraps on further pushes
	q.Push(3)
	q.Push(4) // wraps
	if v := q.RemoveAt(1); v != 2 {
		t.Fatalf("RemoveAt(1) = %d, want 2", v)
	}
	want := []int{1, 3, 4}
	for i, w := range want {
		if got := q.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
	for _, w := range want {
		if v, ok := q.Pop(); !ok || v != w {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, w)
		}
	}
}

// TestQueueRingMatchesSliceModel cross-checks the ring implementation
// against a plain-slice reference over random operation sequences.
func TestQueueRingMatchesSliceModel(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewQueue[int](8)
		var ref []int
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // push
				if q.CanPush() != (len(ref) < 8) {
					return false
				}
				if q.CanPush() {
					q.Push(next)
					ref = append(ref, next)
					next++
				}
			case 2: // pop
				v, ok := q.Pop()
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 3: // remove at a pseudo-random interior index
				if len(ref) == 0 {
					continue
				}
				i := int(op) % len(ref)
				if q.RemoveAt(i) != ref[i] {
					return false
				}
				ref = append(ref[:i], ref[i+1:]...)
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		for i, w := range ref {
			if q.At(i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPipeSteadyStateAllocs is the capacity-stability regression gate
// for the ring-buffer conversion: steady-state Push/Pop traffic on a
// bounded pipe and queue must allocate nothing, and an unbounded pipe
// must stop allocating once it reaches its high-water mark.
func TestPipeSteadyStateAllocs(t *testing.T) {
	p := NewPipe[int](3, 16)
	q := NewQueue[int](16)
	now := Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			p.Push(now, i)
			q.Push(i)
		}
		for i := 0; i < 16; i++ {
			p.Pop(now + 3)
			q.Pop()
		}
		now++
	})
	if allocs != 0 {
		t.Fatalf("bounded pipe+queue steady state allocated %.1f/run, want 0", allocs)
	}

	u := NewPipe[int](0, 0)
	for i := 0; i < 64; i++ { // reach the high-water mark
		u.Push(0, i)
	}
	u.Drain(TimeInf - 1)
	allocs = testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			u.Push(now, i)
		}
		for i := 0; i < 64; i++ {
			u.Pop(now)
		}
	})
	if allocs != 0 {
		t.Fatalf("unbounded pipe allocated %.1f/run past its high-water mark, want 0", allocs)
	}
}

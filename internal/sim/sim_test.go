package sim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	// One second of simulated time is BaseTickHz ticks.
	one := Time(BaseTickHz)
	if got := one.Seconds(); got != 1.0 {
		t.Fatalf("Seconds() = %v, want 1.0", got)
	}
	if got := one.Milliseconds(); got != 1000.0 {
		t.Fatalf("Milliseconds() = %v, want 1000", got)
	}
	if got := one.Nanoseconds(); got != 1e9 {
		t.Fatalf("Nanoseconds() = %v, want 1e9", got)
	}
}

func TestClockPeriodsMatchTable1Frequencies(t *testing.T) {
	// 17 ticks at 20.4 GHz must be exactly one 1200 MHz cycle and
	// 24 ticks exactly one 850 MHz cycle.
	corePeriod := float64(CoreTicks) / BaseTickHz
	if got := 1 / corePeriod; math.Abs(got-1200e6) > 1 {
		t.Errorf("core frequency = %v, want 1200 MHz", got)
	}
	memPeriod := float64(MemTicks) / BaseTickHz
	if got := 1 / memPeriod; math.Abs(got-850e6) > 1 {
		t.Errorf("memory frequency = %v, want 850 MHz", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{TimeInf, "inf"},
		{Time(BaseTickHz / 1000), "1.000ms"},
		{Time(BaseTickHz / 1_000_000), "1.000us"},
		{Time(21), "1.0ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineInterleavesDomainsDeterministically(t *testing.T) {
	e := NewEngine()
	core := e.AddClock("core", CoreTicks)
	mem := e.AddClock("mem", MemTicks)

	var order []string
	core.Register(TickFunc(func(int64) { order = append(order, "c") }))
	mem.Register(TickFunc(func(int64) { order = append(order, "m") }))

	// Advance through exactly one hyper-period: LCM(17,24)=408 ticks,
	// which is 24 core cycles and 17 memory cycles (edges at 0..407).
	e.RunFor(407)
	var c, m int
	for _, s := range order {
		switch s {
		case "c":
			c++
		case "m":
			m++
		}
	}
	if c != 24 || m != 17 {
		t.Fatalf("hyper-period fired %d core / %d mem edges, want 24/17", c, m)
	}
	// Time 0 fires both; clocks added first tick first on shared edges.
	if order[0] != "c" || order[1] != "m" {
		t.Fatalf("shared-edge order = %v, want core before mem", order[:2])
	}
}

func TestEngineRunDeadline(t *testing.T) {
	e := NewEngine()
	e.AddClock("core", CoreTicks)
	err := e.Run(func() bool { return false }, 1000)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Run returned %v, want ErrDeadline", err)
	}
}

func TestEngineRunCompletes(t *testing.T) {
	e := NewEngine()
	clk := e.AddClock("core", CoreTicks)
	n := 0
	clk.Register(TickFunc(func(int64) { n++ }))
	if err := e.Run(func() bool { return n >= 10 }, TimeInf); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("ticked %d times, want 10", n)
	}
}

func TestEngineRunForStopsBetweenEdges(t *testing.T) {
	e := NewEngine()
	clk := e.AddClock("core", 10)
	n := 0
	clk.Register(TickFunc(func(int64) { n++ }))
	e.RunFor(25) // edges at 0, 10, 20
	if n != 3 {
		t.Fatalf("edges fired = %d, want 3", n)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %d, want 25", e.Now())
	}
}

func TestPipeLatencyAndOrder(t *testing.T) {
	p := NewPipe[int](100, 4)
	p.Push(0, 1)
	p.Push(10, 2)
	if _, ok := p.Peek(99); ok {
		t.Fatal("entry visible before latency elapsed")
	}
	if v, ok := p.Pop(100); !ok || v != 1 {
		t.Fatalf("Pop(100) = %v,%v, want 1,true", v, ok)
	}
	if _, ok := p.Pop(105); ok {
		t.Fatal("second entry visible too early")
	}
	if v, ok := p.Pop(110); !ok || v != 2 {
		t.Fatalf("Pop(110) = %v,%v, want 2,true", v, ok)
	}
}

func TestPipeBackpressure(t *testing.T) {
	p := NewPipe[int](10, 2)
	p.Push(0, 1)
	p.Push(0, 2)
	if p.CanPush() {
		t.Fatal("pipe should be full")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Push into full pipe did not panic")
		}
	}()
	p.Push(0, 3)
}

func TestPipeDrain(t *testing.T) {
	p := NewPipe[int](5, 0)
	for i := 0; i < 4; i++ {
		p.Push(Time(i), i)
	}
	got := p.Drain(7) // entries ready at 5,6,7 — not the one at 8
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Drain(7) = %v, want [0 1 2]", got)
	}
	if p.Len() != 1 {
		t.Fatalf("Len after drain = %d, want 1", p.Len())
	}
}

func TestPipePreservesOrderProperty(t *testing.T) {
	// Property: regardless of push times, a pipe always pops entries in
	// push order.
	f := func(delays []uint8) bool {
		p := NewPipe[int](50, 0)
		now := Time(0)
		for i, d := range delays {
			now += Time(d)
			p.Push(now, i)
		}
		want := 0
		for {
			v, ok := p.Pop(now + 50)
			if !ok {
				break
			}
			if v != want {
				return false
			}
			want++
		}
		return want == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFOAndRemoveAt(t *testing.T) {
	q := NewQueue[string](3)
	q.Push("a")
	q.Push("b")
	q.Push("c")
	if q.CanPush() {
		t.Fatal("queue should be full")
	}
	if v := q.RemoveAt(1); v != "b" {
		t.Fatalf("RemoveAt(1) = %q, want b", v)
	}
	if v, _ := q.Pop(); v != "a" {
		t.Fatalf("Pop = %q, want a", v)
	}
	if v, _ := q.Pop(); v != "c" {
		t.Fatalf("Pop = %q, want c", v)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
}

func TestQueueAt(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 5; i++ {
		q.Push(i * 10)
	}
	for i := 0; i < 5; i++ {
		if q.At(i) != i*10 {
			t.Fatalf("At(%d) = %d, want %d", i, q.At(i), i*10)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(43)
	if a.Uint64() == c.Uint64() {
		t.Fatal("different seeds produced identical streams (suspicious)")
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
	f := r.Float64()
	if f < 0 || f >= 1 {
		t.Fatalf("Float64() = %v out of range", f)
	}
}

func TestClockCycleCounting(t *testing.T) {
	e := NewEngine()
	clk := e.AddClock("core", CoreTicks)
	var seen []int64
	clk.Register(TickFunc(func(cy int64) { seen = append(seen, cy) }))
	for i := 0; i < 5; i++ {
		e.Step()
	}
	for i, cy := range seen {
		if cy != int64(i) {
			t.Fatalf("tick %d saw cycle %d", i, cy)
		}
	}
	if clk.Cycle() != 5 {
		t.Fatalf("Cycle() = %d, want 5", clk.Cycle())
	}
}

package noc

import (
	"testing"
	"testing/quick"

	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

func load(id uint64) isa.Request { return isa.Request{ID: id, Kind: isa.KindPIMLoad} }

func ol(id uint64) isa.Request {
	return isa.Request{ID: id, Kind: isa.KindOrderLight,
		OL: isa.OLPacket{PktID: isa.PktIDOrderLight}}
}

func TestSingleRouteIsInOrderPipe(t *testing.T) {
	l := NewLink(1, 10, 0)
	for i := uint64(1); i <= 4; i++ {
		l.Push(sim.Time(i), load(i))
	}
	for want := uint64(1); want <= 4; want++ {
		r, ok := l.Pop(100)
		if !ok || r.ID != want {
			t.Fatalf("Pop = %v,%v want %d", r.ID, ok, want)
		}
	}
}

func TestLatencyHonored(t *testing.T) {
	l := NewLink(2, 100, 0)
	l.Push(0, load(1))
	if _, ok := l.Pop(99); ok {
		t.Fatal("request visible before latency")
	}
	if r, ok := l.Pop(100); !ok || r.ID != 1 {
		t.Fatal("request not delivered at latency")
	}
}

func TestAdaptiveRoutingBalances(t *testing.T) {
	l := NewLink(2, 10, 4)
	for i := uint64(1); i <= 4; i++ {
		l.Push(0, load(i))
	}
	// Least-occupied routing must alternate: both routes hold 2 each.
	if l.routes[0].Len() != 2 || l.routes[1].Len() != 2 {
		t.Fatalf("route occupancy %d/%d, want 2/2", l.routes[0].Len(), l.routes[1].Len())
	}
}

func TestOLReplicatedAndMergedOnce(t *testing.T) {
	l := NewLink(3, 5, 0)
	l.Push(0, load(1))
	l.Push(0, ol(2))
	l.Push(0, load(3)) // behind the copy on its route

	var order []uint64
	for {
		r, ok := l.Pop(50)
		if !ok {
			break
		}
		order = append(order, r.ID)
	}
	if len(order) != 3 {
		t.Fatalf("drained %d, want 3 (copies merged to one)", len(order))
	}
	// The packet must come after request 1 and before request 3.
	pos := map[uint64]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[1] < pos[2] && pos[2] < pos[3]) {
		t.Fatalf("order %v violates the OL barrier", order)
	}
	if l.Merges != 1 {
		t.Fatalf("Merges = %d, want 1", l.Merges)
	}
}

func TestOLWaitsForInFlightCopies(t *testing.T) {
	// Copies pushed at different times: merge only when the slowest
	// arrives. With equal latency all copies arrive together, so force
	// the effect with a head-of-line predecessor on one route.
	l := NewLink(2, 10, 0)
	l.Push(0, load(1)) // route 0 (least occupied first)
	l.Push(0, ol(2))   // copies on both routes, behind load on route 0
	// At t=10 everything has arrived; the load must drain first.
	r, ok := l.Pop(10)
	if !ok || r.ID != 1 {
		t.Fatalf("first pop = %v, want load 1", r.ID)
	}
	r, ok = l.Pop(10)
	if !ok || r.Kind != isa.KindOrderLight {
		t.Fatalf("second pop = %v, want merged OL", r)
	}
}

func TestCanPushSemantics(t *testing.T) {
	l := NewLink(2, 10, 1)
	l.Push(0, load(1))
	if !l.CanPush(load(2)) {
		t.Fatal("one free route should accept a normal request")
	}
	if l.CanPush(ol(3)) {
		t.Fatal("OL needs room on ALL routes")
	}
	l.Push(0, load(2))
	if l.CanPush(load(4)) {
		t.Fatal("full link still accepting")
	}
}

func TestPushFullPanics(t *testing.T) {
	l := NewLink(1, 10, 1)
	l.Push(0, load(1))
	defer func() {
		if recover() == nil {
			t.Fatal("push into full link did not panic")
		}
	}()
	l.Push(0, load(2))
}

// TestLinkConservationProperty: every pushed request pops exactly once,
// every OL pops exactly once (merged), and no request pushed after an
// OL pops before it.
func TestLinkConservationProperty(t *testing.T) {
	f := func(plan []uint8, nRoutesRaw uint8) bool {
		nRoutes := 1 + int(nRoutesRaw%4)
		l := NewLink(nRoutes, 7, 0)
		now := sim.Time(0)
		var id uint64 = 1
		type rec struct {
			id    uint64
			isOL  bool
			after []uint64 // OL ids pushed before this request
		}
		var pushed []rec
		var olsSoFar []uint64
		for _, op := range plan {
			now += sim.Time(op % 3)
			if op%5 == 0 {
				l.Push(now, ol(id))
				olsSoFar = append(olsSoFar, id)
				pushed = append(pushed, rec{id: id, isOL: true})
			} else {
				l.Push(now, load(id))
				after := make([]uint64, len(olsSoFar))
				copy(after, olsSoFar)
				pushed = append(pushed, rec{id: id, after: after})
			}
			id++
		}
		seen := map[uint64]int{}
		pos := map[uint64]int{}
		i := 0
		for {
			r, ok := l.Pop(now + 7)
			if !ok {
				break
			}
			seen[r.ID]++
			pos[r.ID] = i
			i++
		}
		if l.Len() != 0 {
			return false
		}
		for _, p := range pushed {
			if seen[p.id] != 1 {
				return false
			}
			for _, olID := range p.after {
				if pos[p.id] < pos[olID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveRoutingReordersInFlight(t *testing.T) {
	// The §9 hazard made visible: once the receiver's round-robin
	// pointer and the sender's least-occupied choice fall out of phase,
	// a younger request on the other route pops first.
	l := NewLink(2, 10, 8)
	l.Push(0, load(1)) // route 0
	if r, ok := l.Pop(10); !ok || r.ID != 1 {
		t.Fatal("warmup pop failed")
	}
	// rr now points at route 1. Push 2 (tie -> route 0) then 3 (route 1).
	l.Push(10, load(2))
	l.Push(10, load(3))
	r, ok := l.Pop(20)
	if !ok {
		t.Fatal("nothing ready")
	}
	if r.ID != 3 {
		t.Fatalf("popped %d first, want the younger request 3 (program-order inversion)", r.ID)
	}
}

package noc

import (
	"fmt"

	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// LinkState is a link's checkpointable state: each route's in-flight
// entries, the round-robin cursor and the merge counter.
type LinkState struct {
	Routes []sim.PipeState[isa.Request]
	RR     int
	Merges int64
}

// State captures the link's in-flight traffic.
func (l *Link) State() LinkState {
	s := LinkState{Routes: make([]sim.PipeState[isa.Request], len(l.routes)), RR: l.rr, Merges: l.Merges}
	for i, rt := range l.routes {
		s.Routes[i] = rt.State()
	}
	return s
}

// Restore replaces the link's state with the snapshot.
func (l *Link) Restore(s LinkState) error {
	if len(s.Routes) != len(l.routes) {
		return fmt.Errorf("noc: snapshot has %d routes, link has %d", len(s.Routes), len(l.routes))
	}
	if s.RR < 0 || s.RR >= len(l.routes) {
		return fmt.Errorf("noc: snapshot route cursor %d out of range", s.RR)
	}
	for i, rs := range s.Routes {
		if err := l.routes[i].Restore(rs); err != nil {
			return err
		}
	}
	l.rr = s.RR
	l.Merges = s.Merges
	return nil
}

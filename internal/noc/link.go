package noc

import (
	"fmt"

	"orderlight/internal/core"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// Link is a multi-route, fixed-latency hop with bounded per-route
// buffering.
type Link struct {
	routes []*sim.Pipe[isa.Request]
	rr     int

	// Merges counts completed OrderLight copy-merges at the receiver.
	Merges int64
}

// NewLink creates a link with the given number of parallel routes, each
// with the same transport latency and per-route capacity.
func NewLink(routes int, latency sim.Time, capPerRoute int) *Link {
	if routes < 1 {
		panic("noc: link needs at least one route")
	}
	l := &Link{routes: make([]*sim.Pipe[isa.Request], routes)}
	for i := range l.routes {
		l.routes[i] = sim.NewPipe[isa.Request](latency, capPerRoute)
	}
	return l
}

// Routes returns the number of parallel routes.
func (l *Link) Routes() int { return len(l.routes) }

// Len returns the number of in-flight entries across routes.
func (l *Link) Len() int {
	n := 0
	for _, r := range l.routes {
		n += r.Len()
	}
	return n
}

// NextReady returns the earliest arrival time of any in-flight entry,
// or sim.TimeInf when the link is empty. It is the link's quiescence
// hint: the receiving end cannot observe any change before that
// instant. (For a replicated OrderLight packet the merge completes only
// when the slowest copy arrives; reporting the fastest is conservative,
// which is safe — the consumer just observes nothing yet.)
func (l *Link) NextReady() sim.Time {
	next := sim.TimeInf
	for _, rt := range l.routes {
		if t := rt.NextReady(); t < next {
			next = t
		}
	}
	return next
}

// CanPush reports whether the request can enter the link this cycle:
// any route with room for a normal request, every route for an
// OrderLight packet (which must be replicated onto all of them).
func (l *Link) CanPush(r isa.Request) bool {
	if r.Kind == isa.KindOrderLight {
		for _, rt := range l.routes {
			if !rt.CanPush() {
				return false
			}
		}
		return true
	}
	for _, rt := range l.routes {
		if rt.CanPush() {
			return true
		}
	}
	return false
}

// Push routes the request: least-occupied route for normal requests
// (the adaptive-routing reordering source), replication across all
// routes for OrderLight packets.
func (l *Link) Push(now sim.Time, r isa.Request) {
	if r.Kind == isa.KindOrderLight {
		rep := r
		if len(l.routes) > 1 {
			rep = core.Replicate(r, len(l.routes))
		}
		for _, rt := range l.routes {
			rt.Push(now, rep)
		}
		return
	}
	best := -1
	for i, rt := range l.routes {
		if !rt.CanPush() {
			continue
		}
		if best < 0 || rt.Len() < l.routes[best].Len() {
			best = i
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("noc: push into full link (%v)", r))
	}
	l.routes[best].Push(now, r)
}

// Peek returns the request Pop would emit this cycle without removing
// it. The selection is deterministic, so a Peek followed by a Pop in
// the same cycle returns the same request — the pattern the machine
// uses to apply downstream backpressure.
func (l *Link) Peek(now sim.Time) (isa.Request, bool) {
	for _, rt := range l.routes {
		h, ok := rt.Peek(now)
		if !ok || h.Kind != isa.KindOrderLight {
			continue
		}
		if l.mergeReady(now, h) {
			return core.Replicate(h, 0), true
		}
	}
	for k := 0; k < len(l.routes); k++ {
		i := (l.rr + k) % len(l.routes)
		h, ok := l.routes[i].Peek(now)
		if !ok || h.Kind == isa.KindOrderLight {
			continue
		}
		return h, true
	}
	return isa.Request{}, false
}

// Pop emits the next request at the receiving end, at most one per
// call. A route whose head is a waiting OrderLight copy is blocked; the
// merged packet is emitted once every copy has arrived at its route's
// head, and no younger request overtakes it.
func (l *Link) Pop(now sim.Time) (isa.Request, bool) {
	// Merge pass.
	for _, rt := range l.routes {
		h, ok := rt.Peek(now)
		if !ok || h.Kind != isa.KindOrderLight {
			continue
		}
		if l.mergeReady(now, h) {
			for _, o := range l.routes {
				if oh, ok := o.Peek(now); ok && oh.Kind == isa.KindOrderLight && oh.ID == h.ID {
					o.Pop(now)
				}
			}
			l.Merges++
			return core.Replicate(h, 0), true
		}
	}
	// Round-robin drain of ready non-OL heads.
	for k := 0; k < len(l.routes); k++ {
		i := (l.rr + k) % len(l.routes)
		h, ok := l.routes[i].Peek(now)
		if !ok || h.Kind == isa.KindOrderLight {
			continue
		}
		l.routes[i].Pop(now)
		l.rr = (i + 1) % len(l.routes)
		return h, true
	}
	return isa.Request{}, false
}

// mergeReady reports whether all copies of h have arrived at their
// routes' heads.
func (l *Link) mergeReady(now sim.Time, h isa.Request) bool {
	if h.Copies <= 0 {
		return true
	}
	n := 0
	for _, rt := range l.routes {
		if hd, ok := rt.Peek(now); ok && hd.Kind == isa.KindOrderLight && hd.ID == h.ID {
			n++
		}
	}
	return n == h.Copies
}

// Package noc models the interconnection network between the SMs and
// the L2 slices. Its reason to exist is the paper's §9 observation that
// networks-on-chip "may unorder PIM requests — ideas related to path
// divergence are applicable here": a Link can be configured with
// several parallel routes and adaptive (least-occupied) routing, which
// reorders same-channel requests in flight. An OrderLight packet is
// replicated across every route and merged at the receiving end with
// the Figure 9 copy-and-merge discipline, so ordering survives exactly
// the way it survives the L2 sub-partition divergence of §5.3.2.
//
// With a single route the Link degenerates to the plain in-order,
// fixed-latency pipe of the baseline configuration — the setting every
// paper figure uses. The multi-route configurations feed the
// ablation-noc experiment, whose correctness columns demonstrate that
// per-group ordering composes with route divergence.
package noc

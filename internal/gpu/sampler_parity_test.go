package gpu

import (
	"reflect"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/stats"
)

// TestSamplerSkipDenseParity: the quiescence engine folds the sampler's
// next due cycle into its work hint, so skip targets land exactly on
// sample cycles instead of warping past them. The time-series from a
// skip-ahead run must therefore be byte-identical to a dense run of the
// same machine, across cadences chosen to straddle the skip windows
// (including every-cycle sampling, which forbids skipping entirely).
func TestSamplerSkipDenseParity(t *testing.T) {
	for _, every := range []int64{1, 64, 1000} {
		for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
			run := func(dense bool) []stats.Sample {
				cfg := smallConfig(prim)
				store, programs := vectorAddSetup(cfg, 4)
				m, err := NewMachine(cfg, store, programs)
				if err != nil {
					t.Fatal(err)
				}
				m.SetDense(dense)
				s := stats.NewSampler(every)
				m.SetSampler(s)
				if _, err := m.Run(); err != nil {
					t.Fatal(err)
				}
				return s.Samples()
			}
			d, q := run(true), run(false)
			if len(d) == 0 {
				t.Fatalf("every=%d %v: dense run produced no samples", every, prim)
			}
			if !reflect.DeepEqual(d, q) {
				t.Errorf("every=%d %v: skip-ahead series diverged from dense (%d vs %d samples)",
					every, prim, len(d), len(q))
			}
		}
	}
}

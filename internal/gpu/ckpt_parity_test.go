package gpu

import (
	"errors"
	"math/rand"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/fault"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
)

// refRun executes an uninterrupted vector_add run and returns the
// machine (for its store and stats) plus its event stream.
func refRun(t *testing.T, dense bool, tiles int) (*Machine, []obs.Event) {
	t.Helper()
	cfg := smallConfig(config.PrimitiveOrderLight)
	store, programs := vectorAddSetup(cfg, tiles)
	m, err := NewMachine(cfg, store, programs)
	if err != nil {
		t.Fatal(err)
	}
	m.SetDense(dense)
	sink := &obs.CollectSink{}
	m.SetSink(sink)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m, sink.Events()
}

// nonClock filters out the clock-domain tracks: skip-credit spans are
// window-shaped (the windowed run cuts them differently), but every
// machine event — stage crossings, DRAM commands, stalls — must match.
func nonClock(evs []obs.Event) []obs.Event {
	var out []obs.Event
	for _, e := range evs {
		if !e.Track.IsClock() {
			out = append(out, e)
		}
	}
	return out
}

// TestHaltResumeParity is the tentpole determinism property at machine
// level: a run halted at cycle C, captured, restored onto a freshly
// built machine and continued must be byte-identical to an
// uninterrupted run — same stats, same final memory image, same
// non-clock event stream — on both the dense and skip-ahead engines,
// at randomized halt points.
func TestHaltResumeParity(t *testing.T) {
	for _, dense := range []bool{false, true} {
		name := "skip"
		if dense {
			name = "dense"
		}
		t.Run(name, func(t *testing.T) {
			ref, refEvents := refRun(t, dense, 4)
			total := int64(ref.Stats().ExecTime() / sim.CoreTicks)
			if total < 100 {
				t.Fatalf("reference run too short (%d cycles) to halt inside", total)
			}
			rng := rand.New(rand.NewSource(42))
			halts := []int64{1, total / 2, total - 1}
			for i := 0; i < 3; i++ {
				halts = append(halts, 1+rng.Int63n(total-1))
			}
			for _, h := range halts {
				cfg := smallConfig(config.PrimitiveOrderLight)
				store, programs := vectorAddSetup(cfg, 4)
				m, err := NewMachine(cfg, store, programs)
				if err != nil {
					t.Fatal(err)
				}
				m.SetDense(dense)
				preSink := &obs.CollectSink{}
				m.SetSink(preSink)
				m.SetHaltAfter(h)
				if _, err := m.Run(); !errors.Is(err, olerrors.ErrHalted) {
					t.Fatalf("halt at %d: Run = %v, want ErrHalted", h, err)
				}
				state := m.CaptureState()

				store2, programs2 := vectorAddSetup(cfg, 4)
				m2, err := NewMachine(cfg, store2, programs2)
				if err != nil {
					t.Fatal(err)
				}
				m2.SetDense(dense)
				postSink := &obs.CollectSink{}
				m2.SetSink(postSink)
				if err := m2.RestoreState(state); err != nil {
					t.Fatalf("halt at %d: restore: %v", h, err)
				}
				if _, err := m2.Run(); err != nil {
					t.Fatalf("halt at %d: resumed run: %v", h, err)
				}

				if got, want := snap(m2.Stats()), snap(ref.Stats()); got != want {
					t.Fatalf("halt at %d: resumed stats diverge:\n%+v\nwant\n%+v", h, got, want)
				}
				if !store2.Equal(ref.store) {
					t.Fatalf("halt at %d: resumed memory image differs from uninterrupted run", h)
				}
				evs := append(nonClock(preSink.Events()), nonClock(postSink.Events())...)
				want := nonClock(refEvents)
				if len(evs) != len(want) {
					t.Fatalf("halt at %d: %d non-clock events, want %d", h, len(evs), len(want))
				}
				for i := range evs {
					if evs[i] != want[i] {
						t.Fatalf("halt at %d: event %d = %+v, want %+v", h, i, evs[i], want[i])
					}
				}
			}
		})
	}
}

// TestHaltResumeParityFaulted: resuming under an active fault plan
// restores the plan's injection counters, so the continued run injects
// the identical fault sequence and classifies identically.
func TestHaltResumeParityFaulted(t *testing.T) {
	spec := fault.Spec{Class: fault.ClassDropOrdering, Seed: 7, Rate: 0.5}
	run := func(halt int64) (*Machine, fault.Report) {
		cfg := smallConfig(config.PrimitiveOrderLight)
		store, programs := vectorAddSetup(cfg, 4)
		m, err := NewMachine(cfg, store, programs)
		if err != nil {
			t.Fatal(err)
		}
		plan := fault.NewPlan(spec)
		m.SetFaultPlan(plan)
		if halt <= 0 {
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			return m, plan.Report()
		}
		m.SetHaltAfter(halt)
		if _, err := m.Run(); !errors.Is(err, olerrors.ErrHalted) {
			t.Fatalf("Run = %v, want ErrHalted", err)
		}
		state := m.CaptureState()
		store2, programs2 := vectorAddSetup(cfg, 4)
		m2, err := NewMachine(cfg, store2, programs2)
		if err != nil {
			t.Fatal(err)
		}
		plan2 := fault.NewPlan(spec)
		m2.SetFaultPlan(plan2)
		if err := m2.RestoreState(state); err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Run(); err != nil {
			t.Fatal(err)
		}
		return m2, plan2.Report()
	}
	ref, refReport := run(0)
	total := int64(ref.Stats().ExecTime() / sim.CoreTicks)
	for _, h := range []int64{total / 3, 2 * total / 3} {
		m, report := run(h)
		if got, want := snap(m.Stats()), snap(ref.Stats()); got != want {
			t.Fatalf("halt at %d: faulted resumed stats diverge:\n%+v\nwant\n%+v", h, got, want)
		}
		if report != refReport {
			t.Fatalf("halt at %d: injection report %+v, want %+v", h, report, refReport)
		}
		if !m.store.Equal(ref.store) {
			t.Fatalf("halt at %d: faulted resumed memory image differs", h)
		}
	}
}

// TestHaltResumeParityHostTraffic: the host-traffic injector's state
// (remaining loads, latency clock, RNG) survives capture/restore.
func TestHaltResumeParityHostTraffic(t *testing.T) {
	traffic := HostTraffic{PerChannel: 16, EveryN: 10, Group: 1}
	run := func(halt int64) (*Machine, float64, int64) {
		cfg := smallConfig(config.PrimitiveOrderLight)
		store, programs := vectorAddSetup(cfg, 4)
		m, err := NewMachine(cfg, store, programs)
		if err != nil {
			t.Fatal(err)
		}
		m.SetHostTraffic(traffic)
		if halt <= 0 {
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			lat, served := m.HostLatency()
			return m, lat, served
		}
		m.SetHaltAfter(halt)
		if _, err := m.Run(); !errors.Is(err, olerrors.ErrHalted) {
			t.Fatalf("Run = %v, want ErrHalted", err)
		}
		state := m.CaptureState()
		store2, programs2 := vectorAddSetup(cfg, 4)
		m2, err := NewMachine(cfg, store2, programs2)
		if err != nil {
			t.Fatal(err)
		}
		m2.SetHostTraffic(traffic)
		if err := m2.RestoreState(state); err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Run(); err != nil {
			t.Fatal(err)
		}
		lat, served := m2.HostLatency()
		return m2, lat, served
	}
	ref, refLat, refServed := run(0)
	total := int64(ref.Stats().ExecTime() / sim.CoreTicks)
	m, lat, served := run(total / 2)
	if got, want := snap(m.Stats()), snap(ref.Stats()); got != want {
		t.Fatalf("traffic resumed stats diverge:\n%+v\nwant\n%+v", got, want)
	}
	if lat != refLat || served != refServed {
		t.Fatalf("traffic resumed latency %v/%d, want %v/%d", lat, served, refLat, refServed)
	}
}

// TestHaltResumeParitySampler: a resumed sampler continues the
// time-series on the original cadence — the concatenated samples are
// byte-identical to an uninterrupted run's.
func TestHaltResumeParitySampler(t *testing.T) {
	run := func(halt int64) (*Machine, *stats.Sampler) {
		cfg := smallConfig(config.PrimitiveOrderLight)
		store, programs := vectorAddSetup(cfg, 4)
		m, err := NewMachine(cfg, store, programs)
		if err != nil {
			t.Fatal(err)
		}
		s := stats.NewSampler(500)
		m.SetSampler(s)
		if halt <= 0 {
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			return m, s
		}
		m.SetHaltAfter(halt)
		if _, err := m.Run(); !errors.Is(err, olerrors.ErrHalted) {
			t.Fatalf("Run = %v, want ErrHalted", err)
		}
		state := m.CaptureState()
		store2, programs2 := vectorAddSetup(cfg, 4)
		m2, err := NewMachine(cfg, store2, programs2)
		if err != nil {
			t.Fatal(err)
		}
		s2 := stats.NewSampler(500)
		m2.SetSampler(s2)
		if err := m2.RestoreState(state); err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Run(); err != nil {
			t.Fatal(err)
		}
		return m2, s2
	}
	ref, refSampler := run(0)
	total := int64(ref.Stats().ExecTime() / sim.CoreTicks)
	_, s := run(total / 2)
	if got, want := s.CSV(), refSampler.CSV(); got != want {
		t.Fatalf("resumed sample series differs:\n%s\nwant\n%s", got, want)
	}
}

// TestRestoreShapeMismatches: structural disagreements between snapshot
// and machine are refused before any state is touched.
func TestRestoreShapeMismatches(t *testing.T) {
	cfg := smallConfig(config.PrimitiveOrderLight)
	store, programs := vectorAddSetup(cfg, 2)
	m, err := NewMachine(cfg, store, programs)
	if err != nil {
		t.Fatal(err)
	}
	m.SetHaltAfter(50)
	if _, err := m.Run(); !errors.Is(err, olerrors.ErrHalted) {
		t.Fatalf("Run = %v, want ErrHalted", err)
	}
	state := m.CaptureState()

	fresh := func(arm func(*Machine)) *Machine {
		t.Helper()
		s2, p2 := vectorAddSetup(cfg, 2)
		m2, err := NewMachine(cfg, s2, p2)
		if err != nil {
			t.Fatal(err)
		}
		if arm != nil {
			arm(m2)
		}
		return m2
	}
	// Fault plan armed on the machine but absent from the snapshot.
	m2 := fresh(func(m *Machine) {
		m.SetFaultPlan(fault.NewPlan(fault.Spec{Class: fault.ClassDropOrdering, Seed: 1, Rate: 1}))
	})
	if err := m2.RestoreState(state); err == nil {
		t.Error("restore accepted a snapshot without the armed fault plan")
	}
	// Host traffic armed on the machine but absent from the snapshot.
	m2 = fresh(func(m *Machine) { m.SetHostTraffic(HostTraffic{PerChannel: 4, EveryN: 8}) })
	if err := m2.RestoreState(state); err == nil {
		t.Error("restore accepted a snapshot without the armed host traffic")
	}
	// Sampler armed on the machine but absent from the snapshot.
	m2 = fresh(func(m *Machine) { m.SetSampler(stats.NewSampler(100)) })
	if err := m2.RestoreState(state); err == nil {
		t.Error("restore accepted a snapshot without the armed sampler")
	}
	// Channel-count mismatch.
	cfg4 := smallConfig(config.PrimitiveOrderLight)
	cfg4.Memory.Channels = 4
	cfg4.GPU.PIMSMs = 2
	s4, p4 := vectorAddSetup(cfg4, 2)
	m4, err := NewMachine(cfg4, s4, p4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m4.RestoreState(state); err == nil {
		t.Error("restore accepted a snapshot from a 2-channel machine onto 4 channels")
	}
}

// TestAbortStopsRun: the cooperative abort flag converts a running
// machine into a typed ErrAborted failure at the next poll window, and
// an un-aborted windowed run matches the plain path exactly. The fence
// run is long enough (>> abortPollCycles) that at least one poll fires
// before completion.
func TestAbortStopsRun(t *testing.T) {
	const tiles = 48
	cfg := smallConfig(config.PrimitiveFence)
	store, programs := vectorAddSetup(cfg, tiles)
	ref, err := NewMachine(cfg, store, programs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	if total := int64(ref.Stats().ExecTime() / sim.CoreTicks); total <= abortPollCycles {
		t.Fatalf("run too short to poll: %d cycles, poll window %d", total, abortPollCycles)
	}

	store2, programs2 := vectorAddSetup(cfg, tiles)
	m, err := NewMachine(cfg, store2, programs2)
	if err != nil {
		t.Fatal(err)
	}
	m.SetAbort(func() bool { return true })
	if _, err := m.Run(); !errors.Is(err, olerrors.ErrAborted) {
		t.Fatalf("Run = %v, want ErrAborted", err)
	}

	store3, programs3 := vectorAddSetup(cfg, tiles)
	m3, err := NewMachine(cfg, store3, programs3)
	if err != nil {
		t.Fatal(err)
	}
	m3.SetAbort(func() bool { return false })
	if _, err := m3.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := snap(m3.Stats()), snap(ref.Stats()); got != want {
		t.Fatalf("abort-polled run diverged from plain run:\n%+v\nwant\n%+v", got, want)
	}
}

package gpu

import (
	"fmt"

	"orderlight/internal/cache"
	"orderlight/internal/config"
	"orderlight/internal/core"
	"orderlight/internal/dram"
	"orderlight/internal/fault"
	"orderlight/internal/isa"
	"orderlight/internal/memctrl"
	"orderlight/internal/noc"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/pim"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
	"orderlight/internal/trace"
)

// Machine assembles the full simulated system of Figure 6: PIM-kernel
// SMs, per-channel interconnect pipes, L2 slices with sub-partitions,
// L2-to-DRAM pipes, and memory controllers with PIM units. It owns the
// dual-clock engine and the completion/verification logic.
type Machine struct {
	cfg      config.Config
	geom     dram.Geometry
	st       *stats.Run
	eng      *sim.Engine
	store    *dram.Store
	initial  *dram.Store
	programs []Program

	hosts  []host
	icnt   []*noc.Link // SM -> L2 interconnect, one per channel
	slices []*cache.Slice
	l2dram []*sim.Pipe[isa.Request] // L2 -> DRAM scheduler, one per channel
	mcs    []*memctrl.Controller
	acks   *sim.Pipe[int] // issued-to-DRAM acknowledgments (warp ids)
	ft     *core.FenceTracker
	nextID uint64

	tracer  *trace.Tracer  // optional; see SetTracer
	sink    obs.Sink       // optional; see SetSink
	sampler *stats.Sampler // optional; see SetSampler
	fplan   *fault.Plan    // optional; see SetFaultPlan
	par     *parState      // optional; see SetParallel

	ckptEvery int64        // checkpoint cadence in core cycles; see SetCheckpoint
	ckptFn    func() error // checkpoint writer, runs between engine steps
	abort     func() bool  // cooperative abort poll; see SetAbort
	haltAfter int64        // deterministic halt boundary; see SetHaltAfter
	lastCk    sim.Time     // engine time of the last checkpoint written
	resumed   bool         // state restored from a checkpoint; Run continues

	host        HostTraffic
	hostRng     *sim.Rand
	hostLeft    []int // per channel, requests still to inject
	hostPending int   // injected but not yet serviced
	hostSent    map[uint64]sim.Time
	hostLatency sim.Time
	hostServed  int64
	hostHeld    []heldHost // CGA: loads waiting for the PIM kernel to finish
}

// heldHost is a host load blocked by coarse-grained arbitration.
type heldHost struct {
	ch      int
	desired sim.Time // when it wanted to issue
}

// HostTraffic describes synthetic concurrent host accesses injected
// alongside the PIM kernel — the fine-grained-arbitration scenario of
// §3.4: the memory controller interleaves host loads with PIM commands
// instead of blocking the host for the whole PIM computation.
type HostTraffic struct {
	PerChannel int // host loads to inject per channel (0 disables)
	EveryN     int // injection period in core cycles
	Group      int // memory-group the loads target
	Rows       int // row span the loads are scattered over

	// CoarseArbitration models the CGO/CGA class of §3.2: the host may
	// not touch memory while the PIM computation runs, so every host
	// load queues at the core until the PIM kernel drains. Latency is
	// still measured from the moment the load *wanted* to issue, which
	// is exactly the QoS damage the taxonomy discussion describes.
	CoarseArbitration bool
}

// NewMachine builds the machine. The store holds the initial memory
// image; it is mutated by the run. Each program drives one distinct
// channel.
func NewMachine(cfg config.Config, store *dram.Store, programs []Program) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Host.Kind != config.HostCPU && len(programs) > cfg.GPU.PIMSMs*cfg.GPU.WarpsPerSM {
		return nil, fmt.Errorf("gpu: %d programs exceed %d PIM warps", len(programs), cfg.GPU.PIMSMs*cfg.GPU.WarpsPerSM)
	}
	seen := make(map[int]bool)
	for _, p := range programs {
		if p.Channel < 0 || p.Channel >= cfg.Memory.Channels {
			return nil, fmt.Errorf("gpu: program channel %d out of range", p.Channel)
		}
		if seen[p.Channel] {
			return nil, fmt.Errorf("gpu: two programs drive channel %d (one warp per PIM unit, §5.4)", p.Channel)
		}
		seen[p.Channel] = true
	}

	geom := dram.NewGeometry(cfg.Memory.Channels, cfg.Memory.BanksPerChannel,
		cfg.Memory.RowBufferBytes, cfg.Memory.BusWidthBytes,
		cfg.Memory.GroupsPerChannel, cfg.PIM.BMF)
	if store.Lanes() != geom.LanesPerSlot {
		return nil, fmt.Errorf("gpu: store has %d lanes per slot, geometry needs %d", store.Lanes(), geom.LanesPerSlot)
	}

	m := &Machine{
		cfg:      cfg,
		geom:     geom,
		st:       stats.New(cfg.BytesPerCommand()),
		eng:      sim.NewEngine(),
		store:    store,
		initial:  store.Clone(),
		programs: programs,
		ft:       core.NewFenceTracker(len(programs)),
		acks:     sim.NewPipe[int](sim.Time(cfg.GPU.AckLatency)*sim.CoreTicks, 0),
	}

	// Memory-side plumbing, one lane per channel.
	tagLines := cfg.GPU.L2SizeMB << 20 / cfg.Memory.Channels / cfg.Memory.BusWidthBytes
	for ch := 0; ch < cfg.Memory.Channels; ch++ {
		m.icnt = append(m.icnt, noc.NewLink(cfg.GPU.IcntRoutes,
			sim.Time(cfg.GPU.InterconnectToL2)*sim.CoreTicks, 64/cfg.GPU.IcntRoutes+1))
		slice := cache.NewSlice(ch, geom, cfg.GPU.L2SubPartitions, tagLines)
		slice.OnHostHit = func(r isa.Request) { m.completeHost(r) }
		m.slices = append(m.slices, slice)
		m.l2dram = append(m.l2dram, sim.NewPipe[isa.Request](sim.Time(cfg.GPU.L2ToDRAM)*sim.CoreTicks, cfg.GPU.L2QueueSize))
		mc := memctrl.New(ch, cfg, geom, store, m.st)
		mc.OnIssue = m.onIssue
		m.mcs = append(m.mcs, mc)
	}

	// Build the host front end: SIMT SMs (warps distributed WarpsPerSM
	// per SM) or one OoO CPU core per channel program (§9 extension).
	switch cfg.Host.Kind {
	case config.HostCPU:
		for i, p := range programs {
			m.hosts = append(m.hosts, newOoOCore(i, cfg, geom, m.st, p, m.ft, &m.nextID, m.send))
		}
	default:
		warpsPerSM := cfg.GPU.WarpsPerSM
		for smID := 0; smID*warpsPerSM < len(programs); smID++ {
			var ws []*warp
			for wi := smID * warpsPerSM; wi < (smID+1)*warpsPerSM && wi < len(programs); wi++ {
				ws = append(ws, &warp{id: wi, channel: programs[wi].Channel, prog: programs[wi].Instrs})
			}
			m.hosts = append(m.hosts, newSM(smID, cfg, geom, m.st, ws, m.ft, &m.nextID, m.send))
		}
	}

	coreClk := m.eng.AddClock("core", sim.CoreTicks)
	memClk := m.eng.AddClock("mem", sim.MemTicks)
	coreClk.Register(coreDomain{m})
	memClk.Register(memDomain{m})
	return m, nil
}

// coreDomain adapts the machine's core-clock tick to sim.Worker and
// sim.Skipper so the engine can warp over provably idle core cycles.
type coreDomain struct{ m *Machine }

func (d coreDomain) Tick(int64) { d.m.coreTick() }

func (d coreDomain) NextWork(cycle int64) int64 { return d.m.coreNextWork(cycle) }

func (d coreDomain) Skip(n int64) {
	// Only the hosts accrue per-idle-cycle state (stall counters); the
	// transfer stages between pipes are stateless between edges.
	for _, h := range d.m.hosts {
		h.Skip(n)
	}
	d.m.emitSkip(obs.TrackClockCore, n, sim.CoreTicks)
}

// memDomain adapts the memory-clock tick to sim.Worker. Its Skip
// credits no state — controllers accrue per-cycle statistics
// (OLFlagBlocked) only in states their NextWork reports as work-now, so
// elided memory cycles are truly free of observable effects — but it
// does make the elision itself observable as a span on the mem-clock
// track when tracing is armed.
type memDomain struct{ m *Machine }

func (d memDomain) Tick(cycle int64) { d.m.memTick(cycle) }

func (d memDomain) NextWork(cycle int64) int64 { return d.m.memNextWork(cycle) }

func (d memDomain) Skip(n int64) { d.m.emitSkip(obs.TrackClockMem, n, sim.MemTicks) }

// emitSkip records a window of elided clock cycles as a credited span
// on the domain's clock track: the skip-ahead engine's jumps stay
// visible in the trace instead of reading as missing time. The engine
// warps time before firing the post-skip edge, so Now() is the edge
// after the window and the span covers the elided edges exactly.
func (m *Machine) emitSkip(kind string, n int64, period sim.Time) {
	if m.sink == nil || n <= 0 {
		return
	}
	dur := sim.Time(n) * period
	m.sink.Emit(obs.Event{
		Name: "skip", Track: obs.Track{Kind: kind},
		At: m.eng.Now() - dur, Dur: dur,
		Detail: fmt.Sprintf("%d cycles credited", n),
	})
}

// ceilCycle converts a base-tick instant to the first cycle of a clock
// with the given period whose edge is at or after it.
func ceilCycle(t, period sim.Time) int64 {
	return int64((t + period - 1) / period)
}

// coreNextWork is the core domain's quiescence hint with the sampling
// deadline folded in: an armed sampler's next due cycle counts as work,
// so skip-ahead can never warp past a sample point and the time-series
// cadence is byte-identical to a dense run.
func (m *Machine) coreNextWork(cycle int64) int64 {
	w := m.coreWorkHint(cycle)
	if m.sampler != nil {
		if sc := m.sampler.NextCycle(); sc < w {
			if sc < cycle {
				sc = cycle
			}
			return sc
		}
	}
	return w
}

// coreWorkHint is the core domain's raw quiescence hint: the earliest
// core cycle at which coreTick could change anything. Host-traffic runs
// stay dense — injection cadence and coarse-arbitration release depend
// on cross-domain drain state that is cheaper to tick through than to
// predict.
func (m *Machine) coreWorkHint(cycle int64) int64 {
	if m.host.PerChannel != 0 {
		return cycle
	}
	edge := sim.Time(cycle) * sim.CoreTicks
	next := sim.TimeInf
	if t := m.acks.NextReady(); t <= edge {
		return cycle
	} else if t < next {
		next = t
	}
	for ch := range m.icnt {
		if m.slices[ch].Pending() > 0 {
			return cycle // slice drains toward the L2-DRAM pipe each cycle
		}
		if t := m.icnt[ch].NextReady(); t <= edge {
			return cycle
		} else if t < next {
			next = t
		}
	}
	for _, h := range m.hosts {
		t := h.NextWork(edge)
		if t <= edge {
			return cycle
		}
		if t < next {
			next = t
		}
	}
	if next == sim.TimeInf {
		return sim.NoWork
	}
	return ceilCycle(next, sim.CoreTicks)
}

// memNextWork is the memory domain's quiescence hint: the earliest
// memory cycle at which memTick could change anything — an L2-to-DRAM
// arrival, or controller work (dequeue slots, DRAM-timing wake-ups,
// refresh deadlines).
func (m *Machine) memNextWork(cycle int64) int64 {
	edge := sim.Time(cycle) * sim.MemTicks
	next := sim.NoWork
	for ch := range m.mcs {
		if t := m.l2dram[ch].NextReady(); t <= edge {
			return cycle
		} else if t != sim.TimeInf {
			if w := ceilCycle(t, sim.MemTicks); w < next {
				next = w
			}
		}
		w := m.mcs[ch].NextWork(cycle)
		if w <= cycle {
			return cycle
		}
		if w < next {
			next = w
		}
	}
	return next
}

// SetDense forces the naive dense engine for this machine: every clock
// edge fires even when all components are quiescent. Results are
// byte-identical either way; the dense engine is the parity reference
// and the escape hatch when debugging a suspect quiescence hint.
func (m *Machine) SetDense(d bool) { m.eng.SetDense(d) }

// Stats exposes the run's statistics accumulator.
func (m *Machine) Stats() *stats.Run { return m.st }

// SetTracer arms stage tracing for the run: every request's crossings of
// the memory pipe's measurement points are recorded. Must be called
// before Run.
func (m *Machine) SetTracer(t *trace.Tracer) { m.tracer = t }

// SetSink arms streaming event export for the run: stage crossings,
// DRAM commands, PIM command issues, warp fence/OrderLight stall spans,
// and skip-ahead credit spans flow to the sink as they happen. Must be
// called before Run. The SIMT host emits warp-track spans; the OoO-CPU
// host of §9 contributes only the shared memory-side events.
func (m *Machine) SetSink(s obs.Sink) {
	m.sink = s
	for _, h := range m.hosts {
		if sm, ok := h.(*SM); ok {
			sm.sink = s
		}
	}
	for _, mc := range m.mcs {
		mc.Sink = s
	}
}

// SetFaultPlan arms a seeded ordering-fault injection plan for the run,
// threading it through every host front end (SM or OoO core: dropped
// primitives) and memory controller (weakened drains, illegal reorders,
// delayed PIM visibility). Must be called before Run; the plan belongs
// to exactly one machine. Plan decisions are stateless hashes, so a
// faulted run is exactly as deterministic — and as engine-independent —
// as an unfaulted one.
func (m *Machine) SetFaultPlan(p *fault.Plan) {
	m.fplan = p
	for _, h := range m.hosts {
		switch h := h.(type) {
		case *SM:
			h.fault = p
		case *OoOCore:
			h.fault = p
		}
	}
	for _, mc := range m.mcs {
		mc.Fault = p
	}
}

// SetSampler arms periodic counter sampling for the run, binding the
// sampler to this machine's statistics and in-flight-request gauge.
// Must be called before Run.
func (m *Machine) SetSampler(s *stats.Sampler) {
	m.sampler = s
	s.Bind(m.st, m.memPending)
}

// memPending gauges the requests in flight anywhere in the memory
// system: interconnect, L2 slices, L2-to-DRAM pipes, controllers, and
// the acknowledgment path.
func (m *Machine) memPending() int {
	n := m.acks.Len()
	for ch := range m.icnt {
		n += m.icnt[ch].Len() + m.slices[ch].Pending() +
			m.l2dram[ch].Len() + m.mcs[ch].Pending()
	}
	return n
}

// record traces one stage crossing if tracing is armed.
func (m *Machine) record(stage trace.Stage, r isa.Request) {
	if m.tracer != nil {
		m.tracer.Record(m.eng.Now(), stage, r)
	}
	if m.sink != nil {
		m.sink.Emit(obs.Event{
			Name:   stage.String(),
			Track:  stageTrack(stage, r),
			At:     m.eng.Now(),
			Detail: fmt.Sprintf("#%d %v ch%d g%d", r.ID, r.Kind, r.Channel, r.Group),
		})
	}
}

// stageTrack maps a stage crossing to its component track: injection on
// the issuing SM, the interconnect-to-DRAM path stages on the channel's
// L2 track, controller acceptance and device issue on the MC track.
func stageTrack(stage trace.Stage, r isa.Request) obs.Track {
	switch stage {
	case trace.StageInject:
		return obs.Track{Kind: "sm", ID: r.SM}
	case trace.StageL2, trace.StageToDRAM:
		return obs.Track{Kind: "l2", ID: r.Channel}
	default:
		return obs.Track{Kind: "mc", ID: r.Channel}
	}
}

// SetHostTraffic arms synthetic host-load injection for the run. Must be
// called before Run.
func (m *Machine) SetHostTraffic(ht HostTraffic) {
	m.host = ht
	m.hostRng = sim.NewRand(m.cfg.Run.Seed ^ 0x4057_1a21)
	m.hostLeft = make([]int, m.cfg.Memory.Channels)
	for ch := range m.hostLeft {
		m.hostLeft[ch] = ht.PerChannel
	}
	m.hostSent = make(map[uint64]sim.Time)
}

// HostLatency returns the mean core-to-DRAM-issue latency of serviced
// host loads, in core cycles, and how many were serviced.
func (m *Machine) HostLatency() (float64, int64) {
	if m.hostServed == 0 {
		return 0, 0
	}
	return float64(m.hostLatency) / float64(m.hostServed) / float64(sim.CoreTicks), m.hostServed
}

// injectHost pushes due host loads into the interconnect. Under
// coarse-grained arbitration they are held at the core until the PIM
// kernel drains.
func (m *Machine) injectHost() {
	if m.host.PerChannel == 0 {
		return
	}
	now := m.eng.Now()
	// CGA backlog drains once the PIM kernel (and its pipe) is idle.
	hostProbe := isa.Request{Kind: isa.KindHostLoad}
	if len(m.hostHeld) > 0 && m.pimIdle() {
		kept := m.hostHeld[:0]
		for _, h := range m.hostHeld {
			if m.icnt[h.ch].CanPush(hostProbe) {
				m.pushHostLoad(h.ch, now, h.desired)
			} else {
				kept = append(kept, h)
			}
		}
		m.hostHeld = kept
	}
	every := m.host.EveryN
	if every <= 0 {
		every = 1
	}
	if now.CoreCycles()%int64(every) != 0 {
		return
	}
	for ch := range m.hostLeft {
		if m.hostLeft[ch] == 0 {
			continue
		}
		if m.host.CoarseArbitration && !m.pimIdle() {
			m.hostHeld = append(m.hostHeld, heldHost{ch: ch, desired: now})
			m.hostLeft[ch]--
			continue
		}
		if !m.icnt[ch].CanPush(hostProbe) {
			continue
		}
		m.pushHostLoad(ch, now, now)
		m.hostLeft[ch]--
	}
}

// pimIdle reports whether every PIM warp has retired and the memory
// system holds no PIM work (the CGA release condition).
func (m *Machine) pimIdle() bool {
	for _, h := range m.hosts {
		if !h.Done() {
			return false
		}
	}
	for ch := range m.mcs {
		if m.mcs[ch].Pending() > 0 || m.icnt[ch].Len() > 0 ||
			m.slices[ch].Pending() > 0 || m.l2dram[ch].Len() > 0 {
			return false
		}
	}
	return true
}

// pushHostLoad materializes and injects one synthetic host load; its
// latency clock starts at `desired`.
func (m *Machine) pushHostLoad(ch int, now, desired sim.Time) {
	rows := m.host.Rows
	if rows <= 0 {
		rows = 64
	}
	bank := m.host.Group * m.cfg.BanksPerGroup()
	m.nextID++
	addr := m.geom.Encode(dram.Loc{
		Channel: ch, Bank: bank,
		Row: 1024 + m.hostRng.Intn(rows), // away from PIM data
		Col: m.hostRng.Intn(m.geom.SlotsPerRow),
	})
	loc := m.geom.Decode(addr)
	r := isa.Request{
		ID: m.nextID, Kind: isa.KindHostLoad, Addr: addr,
		Channel: ch, Group: m.geom.GroupOf(loc.Bank), Bank: loc.Bank, Row: loc.Row,
		Warp: -1,
	}
	m.icnt[ch].Push(now, r)
	m.hostSent[r.ID] = desired
	m.hostPending++
}

// Controller exposes a channel's memory controller (for tests/tracing).
func (m *Machine) Controller(ch int) *memctrl.Controller { return m.mcs[ch] }

// send pushes a request from an SM into its channel's interconnect.
func (m *Machine) send(r isa.Request) bool {
	l := m.icnt[r.Channel]
	if !l.CanPush(r) {
		return false
	}
	l.Push(m.eng.Now(), r)
	m.record(trace.StageInject, r)
	return true
}

// onIssue is called by a memory controller when a request issues to the
// device; it starts the acknowledgment on its way back to the SM, or
// completes a host load's latency measurement.
func (m *Machine) onIssue(r isa.Request) {
	m.record(trace.StageDevice, r)
	if r.Kind.IsPIM() {
		m.acks.Push(m.eng.Now(), r.Warp)
		return
	}
	m.completeHost(r)
}

// completeHost finishes one injected host load (at the L2 on a hit, or
// at the memory controller on a miss).
func (m *Machine) completeHost(r isa.Request) {
	if sent, ok := m.hostSent[r.ID]; ok {
		m.hostLatency += m.eng.Now() - sent
		m.hostServed++
		m.hostPending--
		delete(m.hostSent, r.ID)
	}
}

// coreTick advances everything in the 1200 MHz core domain.
func (m *Machine) coreTick() {
	if m.par != nil && m.par.installed {
		m.coreTickPar()
		return
	}
	now := m.eng.Now()
	if m.sampler != nil {
		m.sampler.ObserveCycle(now)
	}
	m.injectHost()
	// Acknowledgments reach the fence trackers.
	for {
		w, ok := m.acks.Pop(now)
		if !ok {
			break
		}
		m.ft.Acked(w)
	}
	// Interconnect -> L2 slice (one per channel per cycle).
	for ch := range m.icnt {
		if r, ok := m.icnt[ch].Peek(now); ok && m.slices[ch].CanAccept(r) {
			m.icnt[ch].Pop(now)
			m.slices[ch].Accept(r)
			m.record(trace.StageL2, r)
		}
	}
	// L2 slice -> L2-to-DRAM pipe (one per channel per cycle).
	for ch := range m.slices {
		if !m.l2dram[ch].CanPush() {
			continue
		}
		if r, ok := m.slices[ch].Pop(); ok {
			m.l2dram[ch].Push(now, r)
			m.record(trace.StageToDRAM, r)
		}
	}
	// Hosts issue last so a request needs a full cycle to reach the pipes.
	for _, h := range m.hosts {
		h.Tick(now)
	}
}

// memTick advances the 850 MHz memory domain.
func (m *Machine) memTick(cycle int64) {
	if m.par != nil && m.par.installed {
		m.memTickPar(cycle)
		return
	}
	now := m.eng.Now()
	for ch, mc := range m.mcs {
		if r, ok := m.l2dram[ch].Peek(now); ok && mc.CanAccept(r) {
			m.l2dram[ch].Pop(now)
			mc.Accept(r)
			m.record(trace.StageMC, r)
		}
		mc.Tick(cycle)
	}
}

// done reports whether the whole machine has drained.
func (m *Machine) done() bool {
	for _, h := range m.hosts {
		if !h.Done() {
			return false
		}
	}
	for ch := range m.icnt {
		if m.icnt[ch].Len() > 0 || m.slices[ch].Pending() > 0 ||
			m.l2dram[ch].Len() > 0 || m.mcs[ch].Pending() > 0 {
			return false
		}
	}
	if m.hostPending > 0 || len(m.hostHeld) > 0 {
		return false
	}
	for _, left := range m.hostLeft {
		if left > 0 {
			return false
		}
	}
	return m.acks.Len() == 0
}

// SetCheckpoint arms periodic checkpointing: every `every` core cycles
// (at the first clock boundary at or past each multiple), fn is invoked
// between engine steps — the epoch-safe point where CaptureState is
// legal. A checkpoint-write error aborts the run. Must be called before
// Run; every <= 0 or a nil fn disables the cadence.
func (m *Machine) SetCheckpoint(every int64, fn func() error) {
	m.ckptEvery, m.ckptFn = every, fn
}

// SetAbort arms a cooperative abort poll: fn is consulted between
// engine steps, at least every abortPollCycles core cycles of simulated
// time; when it reports true, Run returns wrapping olerrors.ErrAborted.
// The poll never warps simulation time, so an un-aborted run is
// byte-identical with or without it. Must be called before Run.
func (m *Machine) SetAbort(fn func() bool) { m.abort = fn }

// SetHaltAfter arms a deterministic halt: the run stops at the first
// engine step past the given core cycle, writes a final checkpoint if
// one is armed, and returns wrapping olerrors.ErrHalted. It is the
// reproducible "kill" used by crash-resume tests and olsim -stop-after.
// Must be called before Run; n <= 0 disables.
func (m *Machine) SetHaltAfter(n int64) { m.haltAfter = n }

// abortPollCycles bounds how much simulated time may pass between abort
// polls (in core cycles). Small enough that a wedged cell is caught
// promptly, large enough that window bookkeeping stays off the profile.
const abortPollCycles = 8192

// runWindowed drives the engine in bounded windows so checkpoint, halt
// and abort hooks can run between steps. RunUntil never warps the clock
// to a window edge, so the event sequence — and therefore stats, traces
// and the final memory image — is byte-identical to an uninterrupted
// m.eng.Run on either engine.
func (m *Machine) runWindowed(deadline sim.Time) error {
	m.lastCk = -1
	nextCk := int64(0)
	if m.ckptEvery > 0 && m.ckptFn != nil {
		nextCk = (m.eng.Now().CoreCycles()/m.ckptEvery + 1) * m.ckptEvery
	}
	pollAt := m.eng.Now()
	for {
		limit := sim.TimeInf
		if nextCk > 0 {
			limit = sim.Time(nextCk) * sim.CoreTicks
		}
		if m.haltAfter > 0 {
			if t := sim.Time(m.haltAfter) * sim.CoreTicks; t < limit {
				limit = t
			}
		}
		if m.abort != nil {
			// Advance the poll horizon from wherever the engine got to,
			// so an idle span still makes progress window over window.
			if now := m.eng.Now(); now > pollAt {
				pollAt = now
			}
			pollAt += abortPollCycles * sim.CoreTicks
			if pollAt < limit {
				limit = pollAt
			}
		}
		capped := false
		if limit >= deadline {
			limit, capped = deadline, true
		}
		finished, err := m.eng.RunUntil(m.done, limit)
		switch {
		case err != nil:
			return err
		case finished:
			return nil
		case capped:
			return m.eng.DeadlineError()
		}
		if m.abort != nil && m.abort() {
			return fmt.Errorf("gpu: %w (t=%v)", olerrors.ErrAborted, m.eng.Now())
		}
		if m.haltAfter > 0 && sim.Time(m.haltAfter)*sim.CoreTicks <= limit {
			if err := m.writeCheckpoint(); err != nil {
				return err
			}
			return fmt.Errorf("gpu: %w after core cycle %d", olerrors.ErrHalted, m.haltAfter)
		}
		if nextCk > 0 && sim.Time(nextCk)*sim.CoreTicks <= limit {
			if err := m.writeCheckpoint(); err != nil {
				return err
			}
			for sim.Time(nextCk)*sim.CoreTicks <= limit {
				nextCk += m.ckptEvery
			}
		}
	}
}

// writeCheckpoint invokes the armed checkpoint writer at most once per
// engine instant (the halt path and the cadence path can coincide).
func (m *Machine) writeCheckpoint() error {
	if m.ckptFn == nil || m.eng.Now() == m.lastCk {
		return nil
	}
	if err := m.ckptFn(); err != nil {
		return err
	}
	m.lastCk = m.eng.Now()
	return nil
}

// Run simulates until completion (or the configured deadline) and
// returns the statistics. When cfg.Run.Verify is set, the final memory
// image is checked against the reference executor's program-order
// result; a mismatch is recorded in the stats, not an error — it is the
// expected outcome of running without an ordering primitive.
//
// When checkpoint, halt or abort hooks are armed the run is driven in
// windows (see runWindowed); otherwise it takes the plain engine path.
// After RestoreState, Run continues the checkpointed run: the stats
// start time is preserved rather than restamped.
func (m *Machine) Run() (*stats.Run, error) {
	deadline := sim.Time(m.cfg.Run.DeadlineMS / 1e3 * sim.BaseTickHz)
	if !m.resumed {
		m.st.Start = m.eng.Now()
	}
	if m.par != nil {
		m.parInstall()
		defer m.parUninstall()
	}
	var err error
	if m.ckptFn != nil || m.haltAfter > 0 || m.abort != nil {
		err = m.runWindowed(deadline)
	} else {
		err = m.eng.Run(m.done, deadline)
	}
	m.foldPar()
	if err != nil {
		return m.st, err
	}
	m.st.End = m.eng.Now()
	if m.sampler != nil {
		m.sampler.Finish(m.eng.Now())
	}
	if m.cfg.Run.Verify {
		if err := m.Verify(); err != nil {
			return m.st, err
		}
	}
	return m.st, nil
}

// Verify replays every program in order on the initial memory image and
// compares the result with the machine's final memory.
func (m *Machine) Verify() error {
	m.foldPar()
	ref := m.initial.Clone()
	nslots := m.cfg.CommandsPerTile() * m.cfg.Memory.GroupsPerChannel
	for _, p := range m.programs {
		reqs := ExpandProgram(m.geom, m.cfg.CommandsPerTile(), p)
		if err := pim.Replay(ref, p.Channel, nslots, reqs); err != nil {
			return fmt.Errorf("gpu: reference replay failed: %w", err)
		}
	}
	m.st.Verified = true
	m.st.Correct = m.store.Equal(ref)
	if !m.st.Correct {
		m.st.DiffSlots = len(m.store.Diff(ref, 1<<20))
	}
	return nil
}

// ExpandProgram materializes a warp program as its request sequence in
// program order, with the same lane expansion the SM performs: TS slots
// wrap over the n-entry per-group temporary-storage partition and are
// offset by the request's memory-group. It is the input to the
// reference executor.
func ExpandProgram(geom dram.Geometry, n int, p Program) []isa.Request {
	var out []isa.Request
	for _, in := range p.Instrs {
		switch in.Kind {
		case isa.KindFence:
			out = append(out, isa.Request{Kind: isa.KindFence, Channel: p.Channel})
		case isa.KindOrderLight:
			out = append(out, isa.Request{Kind: isa.KindOrderLight, Channel: p.Channel, Group: in.Group})
		default:
			for lane := 0; lane < in.Count; lane++ {
				r := isa.Request{
					Kind: in.Kind, Op: in.Op, Channel: p.Channel,
					Imm: in.Imm, Group: in.Group,
				}
				if in.Kind.IsMemAccess() {
					r.Addr = in.Addr + isa.Addr(int64(lane)*in.Strd)
					loc := geom.Decode(r.Addr)
					r.Bank, r.Row = loc.Bank, loc.Row
					r.Group = geom.GroupOf(loc.Bank)
				}
				r.TSlot = r.Group*n + (in.TSlot+lane)%n
				out = append(out, r)
			}
		}
	}
	return out
}

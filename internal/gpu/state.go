package gpu

import (
	"fmt"

	"orderlight/internal/cache"
	"orderlight/internal/core"
	"orderlight/internal/dram"
	"orderlight/internal/fault"
	"orderlight/internal/isa"
	"orderlight/internal/memctrl"
	"orderlight/internal/noc"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
)

// This file is the machine's checkpoint surface. CaptureState is legal
// only between engine steps (the checkpoint hook runs there), where no
// clock edge is half-fired and every component's state is complete —
// the epoch-safe boundary the checkpoint format's determinism guarantee
// rests on. RestoreState rebuilds that state onto a freshly constructed
// machine of the same configuration and programs; the continuation then
// reproduces the uninterrupted run's event sequence exactly.

// WarpSnap is one warp's (or OoO thread's) program-cursor state.
type WarpSnap struct {
	PC       int
	Lane     int
	State    uint8
	PktNum   uint32
	Seq      uint64
	StallAcc int64
}

// CollectorEntryState is one operand-collector entry in flight.
type CollectorEntryState struct {
	R     isa.Request
	Ready sim.Time
}

// SMState is one SM's checkpointable state.
type SMState struct {
	RR        int
	Warps     []WarpSnap
	Collector []CollectorEntryState
	LDST      []isa.Request
	CC        core.CollectorCounterState
}

// OoOState is one OoO core's checkpointable state.
type OoOState struct {
	W      WarpSnap
	Window []isa.Request
	RS     core.CollectorCounterState
	Rng    uint64
}

// HeldState is one coarse-arbitration-held host load.
type HeldState struct {
	Ch      int
	Desired sim.Time
}

// HostTrafficState is the synthetic host-traffic injector's state.
type HostTrafficState struct {
	Left    []int
	Pending int
	Sent    map[uint64]sim.Time
	Latency sim.Time
	Served  int64
	Held    []HeldState
	Rng     uint64
}

// MachineState is the complete mutable state of a machine between
// engine steps. Optional subsystems (host traffic, fault plan, sampler)
// snapshot as nil pointers when unarmed; restore requires the same
// subsystems armed on the target machine.
type MachineState struct {
	Engine sim.EngineState
	Stats  stats.Run
	Store  dram.StoreState
	NextID uint64
	Fence  []int
	Acks   sim.PipeState[int]
	SMs    []SMState
	Cores  []OoOState
	Icnt   []noc.LinkState
	Slices []cache.SliceState
	L2DRAM []sim.PipeState[isa.Request]
	MCs    []memctrl.ControllerState

	Traffic *HostTrafficState
	Fault   *fault.PointCounts
	Sampler *stats.SamplerState
}

func snapWarp(w *warp) WarpSnap {
	return WarpSnap{PC: w.pc, Lane: w.lane, State: uint8(w.state), PktNum: w.pktNum, Seq: w.seq, StallAcc: w.stallAcc}
}

func restoreWarp(w *warp, s WarpSnap) error {
	if s.PC < 0 || s.PC > len(w.prog) {
		return fmt.Errorf("gpu: snapshot warp %d pc %d outside program of %d instructions", w.id, s.PC, len(w.prog))
	}
	if s.State > uint8(warpDone) {
		return fmt.Errorf("gpu: snapshot warp %d has unknown state %d", w.id, s.State)
	}
	w.pc, w.lane = s.PC, s.Lane
	w.state = warpState(s.State)
	w.pktNum, w.seq, w.stallAcc = s.PktNum, s.Seq, s.StallAcc
	return nil
}

func (s *SM) state() SMState {
	st := SMState{RR: s.rr, CC: s.cc.State(), LDST: s.ldst.State()}
	for _, w := range s.warps {
		st.Warps = append(st.Warps, snapWarp(w))
	}
	for _, e := range s.collector {
		st.Collector = append(st.Collector, CollectorEntryState{R: e.r, Ready: e.ready})
	}
	return st
}

func (s *SM) restore(st SMState) error {
	if len(st.Warps) != len(s.warps) {
		return fmt.Errorf("gpu: snapshot SM %d has %d warps, SM has %d", s.id, len(st.Warps), len(s.warps))
	}
	if st.RR < 0 || st.RR >= len(s.warps) {
		return fmt.Errorf("gpu: snapshot SM %d warp cursor %d out of range", s.id, st.RR)
	}
	if len(st.Collector) > cap(s.collector) {
		return fmt.Errorf("gpu: snapshot SM %d has %d collector entries, capacity is %d", s.id, len(st.Collector), cap(s.collector))
	}
	for i, w := range s.warps {
		if err := restoreWarp(w, st.Warps[i]); err != nil {
			return err
		}
	}
	s.rr = st.RR
	s.collector = s.collector[:0]
	for _, e := range st.Collector {
		s.collector = append(s.collector, collectorEntry{r: e.R, ready: e.Ready})
	}
	if err := s.ldst.Restore(st.LDST); err != nil {
		return err
	}
	return s.cc.Restore(st.CC)
}

func (c *OoOCore) state() OoOState {
	return OoOState{
		W:      snapWarp(&c.w),
		Window: append([]isa.Request(nil), c.window...),
		RS:     c.rs.State(),
		Rng:    c.rng.State(),
	}
}

func (c *OoOCore) restore(st OoOState) error {
	if err := restoreWarp(&c.w, st.W); err != nil {
		return err
	}
	if len(st.Window) > c.cfg.Host.ROBSize {
		return fmt.Errorf("gpu: snapshot core %d has %d window entries, ROB holds %d", c.id, len(st.Window), c.cfg.Host.ROBSize)
	}
	c.window = append(c.window[:0], st.Window...)
	c.rng.SetState(st.Rng)
	return c.rs.Restore(st.RS)
}

// CaptureState snapshots the machine's complete mutable state. It must
// only be called between engine steps (never from inside a tick) — the
// checkpoint hook and the post-halt path satisfy this by construction.
func (m *Machine) CaptureState() *MachineState {
	// Under the parallel engine, per-channel counters and overlay deltas
	// must land in the global accumulators before they are snapshotted.
	m.foldPar()
	s := &MachineState{
		Engine: m.eng.State(),
		Stats:  m.st.Snapshot(),
		Store:  m.store.State(),
		NextID: m.nextID,
		Fence:  m.ft.State(),
		Acks:   m.acks.State(),
	}
	for _, h := range m.hosts {
		switch h := h.(type) {
		case *SM:
			s.SMs = append(s.SMs, h.state())
		case *OoOCore:
			s.Cores = append(s.Cores, h.state())
		}
	}
	for ch := range m.icnt {
		s.Icnt = append(s.Icnt, m.icnt[ch].State())
		s.Slices = append(s.Slices, m.slices[ch].State())
		s.L2DRAM = append(s.L2DRAM, m.l2dram[ch].State())
		s.MCs = append(s.MCs, m.mcs[ch].State())
	}
	if m.host.PerChannel != 0 {
		ts := HostTrafficState{
			Left:    append([]int(nil), m.hostLeft...),
			Pending: m.hostPending,
			Sent:    make(map[uint64]sim.Time, len(m.hostSent)),
			Latency: m.hostLatency,
			Served:  m.hostServed,
			Held:    make([]HeldState, 0, len(m.hostHeld)),
			Rng:     m.hostRng.State(),
		}
		for id, t := range m.hostSent {
			ts.Sent[id] = t
		}
		for _, h := range m.hostHeld {
			ts.Held = append(ts.Held, HeldState{Ch: h.ch, Desired: h.desired})
		}
		s.Traffic = &ts
	}
	if m.fplan != nil {
		c := m.fplan.Counts()
		s.Fault = &c
	}
	if m.sampler != nil {
		ss := m.sampler.State()
		s.Sampler = &ss
	}
	return s
}

// RestoreState rewinds the machine to a captured state. The machine
// must be freshly built from the same configuration and programs, with
// the same optional subsystems (host traffic, fault plan, sampler)
// armed; any structural disagreement is an error and the machine must
// not be run afterwards. After a successful restore, Run continues the
// original run's event sequence exactly.
func (m *Machine) RestoreState(s *MachineState) error {
	var sms []*SM
	var cores []*OoOCore
	for _, h := range m.hosts {
		switch h := h.(type) {
		case *SM:
			sms = append(sms, h)
		case *OoOCore:
			cores = append(cores, h)
		}
	}
	switch {
	case len(s.SMs) != len(sms):
		return fmt.Errorf("gpu: snapshot has %d SMs, machine has %d", len(s.SMs), len(sms))
	case len(s.Cores) != len(cores):
		return fmt.Errorf("gpu: snapshot has %d OoO cores, machine has %d", len(s.Cores), len(cores))
	case len(s.Icnt) != len(m.icnt) || len(s.Slices) != len(m.slices) ||
		len(s.L2DRAM) != len(m.l2dram) || len(s.MCs) != len(m.mcs):
		return fmt.Errorf("gpu: snapshot has %d channels, machine has %d", len(s.MCs), len(m.mcs))
	case (s.Traffic != nil) != (m.host.PerChannel != 0):
		return fmt.Errorf("gpu: snapshot and machine disagree on host traffic (snapshot %t, machine %t)",
			s.Traffic != nil, m.host.PerChannel != 0)
	case (s.Fault != nil) != (m.fplan != nil):
		return fmt.Errorf("gpu: snapshot and machine disagree on fault plan (snapshot %t, machine %t)",
			s.Fault != nil, m.fplan != nil)
	case (s.Sampler != nil) != (m.sampler != nil):
		return fmt.Errorf("gpu: snapshot and machine disagree on sampler (snapshot %t, machine %t)",
			s.Sampler != nil, m.sampler != nil)
	}
	if err := m.eng.Restore(s.Engine); err != nil {
		return err
	}
	m.st.RestoreFrom(s.Stats)
	if err := m.store.Restore(s.Store); err != nil {
		return err
	}
	m.nextID = s.NextID
	if err := m.ft.Restore(s.Fence); err != nil {
		return err
	}
	if err := m.acks.Restore(s.Acks); err != nil {
		return err
	}
	for i, sm := range sms {
		if err := sm.restore(s.SMs[i]); err != nil {
			return err
		}
	}
	for i, c := range cores {
		if err := c.restore(s.Cores[i]); err != nil {
			return err
		}
	}
	for ch := range m.icnt {
		if err := m.icnt[ch].Restore(s.Icnt[ch]); err != nil {
			return err
		}
		if err := m.slices[ch].Restore(s.Slices[ch]); err != nil {
			return err
		}
		if err := m.l2dram[ch].Restore(s.L2DRAM[ch]); err != nil {
			return err
		}
		if err := m.mcs[ch].Restore(s.MCs[ch]); err != nil {
			return err
		}
	}
	if s.Traffic != nil {
		t := s.Traffic
		if len(t.Left) != len(m.hostLeft) {
			return fmt.Errorf("gpu: snapshot traffic covers %d channels, machine has %d", len(t.Left), len(m.hostLeft))
		}
		copy(m.hostLeft, t.Left)
		m.hostPending = t.Pending
		m.hostSent = make(map[uint64]sim.Time, len(t.Sent))
		for id, at := range t.Sent {
			m.hostSent[id] = at
		}
		m.hostLatency = t.Latency
		m.hostServed = t.Served
		m.hostHeld = m.hostHeld[:0]
		for _, h := range t.Held {
			m.hostHeld = append(m.hostHeld, heldHost{ch: h.Ch, desired: h.Desired})
		}
		m.hostRng.SetState(t.Rng)
	}
	if s.Fault != nil {
		m.fplan.SetCounts(*s.Fault)
	}
	if s.Sampler != nil {
		m.sampler.Restore(*s.Sampler)
	}
	m.resumed = true
	return nil
}

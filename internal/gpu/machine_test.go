package gpu

import (
	"errors"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/dram"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
	"orderlight/internal/trace"
)

// smallConfig is a 2-channel machine for fast integration tests.
func smallConfig(p config.Primitive) config.Config {
	cfg := config.Default()
	cfg.Memory.Channels = 2
	cfg.GPU.PIMSMs = 1
	cfg.GPU.WarpsPerSM = 2
	cfg.Run.Primitive = p
	cfg.Run.DeadlineMS = 5
	return cfg
}

func geomOf(cfg config.Config) dram.Geometry {
	return dram.NewGeometry(cfg.Memory.Channels, cfg.Memory.BanksPerChannel,
		cfg.Memory.RowBufferBytes, cfg.Memory.BusWidthBytes,
		cfg.Memory.GroupsPerChannel, cfg.PIM.BMF)
}

// vectorAddSetup builds the Figure 4 vector_add kernel over `tiles`
// tiles of N=8 commands per channel: vector a in row 0, b in row 1, c in
// row 2 of bank 0, plus the requested ordering primitive between phases.
func vectorAddSetup(cfg config.Config, tiles int) (*dram.Store, []Program) {
	geom := geomOf(cfg)
	store := dram.NewStore(geom.LanesPerSlot)
	n := cfg.CommandsPerTile()
	var programs []Program
	for ch := 0; ch < cfg.Memory.Channels; ch++ {
		var instrs []isa.Instr
		order := func(group int) {
			switch cfg.Run.Primitive {
			case config.PrimitiveFence:
				instrs = append(instrs, isa.Instr{Kind: isa.KindFence})
			case config.PrimitiveOrderLight:
				instrs = append(instrs, isa.Instr{Kind: isa.KindOrderLight, Group: group})
			}
		}
		for t := 0; t < tiles; t++ {
			col := (t * n) % geom.SlotsPerRow
			rowOff := t * n / geom.SlotsPerRow
			a := geom.Encode(dram.Loc{Channel: ch, Bank: 0, Row: 0 + rowOff, Col: col})
			b := geom.Encode(dram.Loc{Channel: ch, Bank: 0, Row: 8 + rowOff, Col: col})
			c := geom.Encode(dram.Loc{Channel: ch, Bank: 0, Row: 16 + rowOff, Col: col})
			strd := int64(geom.Channels)
			instrs = append(instrs, isa.Instr{Kind: isa.KindPIMLoad, Addr: a, Count: n, Strd: strd})
			order(0)
			instrs = append(instrs, isa.Instr{Kind: isa.KindPIMCompute, Op: isa.OpAdd, Addr: b, Count: n, Strd: strd})
			order(0)
			instrs = append(instrs, isa.Instr{Kind: isa.KindPIMStore, Addr: c, Count: n, Strd: strd})
			order(0)
			// Initialize a and b with distinguishable data.
			for lane := 0; lane < n; lane++ {
				av := make([]int32, geom.LanesPerSlot)
				bv := make([]int32, geom.LanesPerSlot)
				for l := range av {
					av[l] = int32(1000*ch + 10*t + lane)
					bv[l] = int32(7 + t)
				}
				store.Write(a+isa.Addr(int64(lane)*strd), av)
				store.Write(b+isa.Addr(int64(lane)*strd), bv)
			}
		}
		programs = append(programs, Program{Channel: ch, Instrs: instrs})
	}
	return store, programs
}

func runVectorAdd(t *testing.T, prim config.Primitive, tiles int) *Machine {
	t.Helper()
	cfg := smallConfig(prim)
	store, programs := vectorAddSetup(cfg, tiles)
	m, err := NewMachine(cfg, store, programs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineOrderLightCorrectness(t *testing.T) {
	m := runVectorAdd(t, config.PrimitiveOrderLight, 8)
	st := m.Stats()
	if !st.Verified || !st.Correct {
		t.Fatalf("OrderLight run incorrect: %d differing slots", st.DiffSlots)
	}
	if st.OLCount != 2*8*3 {
		t.Fatalf("OLCount = %d, want 48 (2 channels x 8 tiles x 3)", st.OLCount)
	}
	if st.FenceCount != 0 {
		t.Fatal("fences executed in an OrderLight run")
	}
	if st.PIMCommands != 2*8*24 {
		t.Fatalf("PIMCommands = %d, want 384", st.PIMCommands)
	}
	if st.OLMerges != st.OLCount {
		t.Fatalf("OLMerges = %d, want %d (every packet merges once at its MC)", st.OLMerges, st.OLCount)
	}
}

func TestMachineFenceCorrectButSlow(t *testing.T) {
	ol := runVectorAdd(t, config.PrimitiveOrderLight, 8)
	fe := runVectorAdd(t, config.PrimitiveFence, 8)
	if !fe.Stats().Correct {
		t.Fatal("fence run functionally incorrect")
	}
	if fe.Stats().FenceCount != 48 {
		t.Fatalf("FenceCount = %d, want 48", fe.Stats().FenceCount)
	}
	// The paper's core claim, in miniature: fences stall the core for
	// hundreds of cycles each, OrderLight barely stalls at all, and the
	// fence run is several times slower.
	if w := fe.Stats().WaitCyclesPerFence(); w < 100 {
		t.Errorf("WaitCyclesPerFence = %.1f, expected >100 (memory-pipe round trip)", w)
	}
	ratio := float64(fe.Stats().ExecTime()) / float64(ol.Stats().ExecTime())
	if ratio < 1.5 {
		t.Errorf("fence/OrderLight time ratio = %.2f, want > 1.5", ratio)
	}
	if fe.Stats().FenceStallCycles <= ol.Stats().OLStallCycles {
		t.Error("fence stalls should dwarf OrderLight stalls")
	}
}

func TestMachineNoPrimitiveIsFunctionallyIncorrect(t *testing.T) {
	// Figure 5's leftmost configuration: without any ordering primitive
	// the FR-FCFS scheduler's row-hit-first reordering corrupts the
	// result (tile t+1's loads overwrite TS before tile t's stores).
	m := runVectorAdd(t, config.PrimitiveNone, 8)
	st := m.Stats()
	if !st.Verified {
		t.Fatal("verification did not run")
	}
	if st.Correct {
		t.Fatal("no-primitive run produced a correct result; the hazard did not manifest")
	}
}

func TestMachineOrderLightFasterThanNone(t *testing.T) {
	// OrderLight's cost over no ordering at all should be modest: the
	// packets consume pipe slots but barely stall the core.
	ol := runVectorAdd(t, config.PrimitiveOrderLight, 8)
	no := runVectorAdd(t, config.PrimitiveNone, 8)
	// The unordered run reorders freely across the full 64-entry
	// scheduler window, so it genuinely pipelines better — but the
	// correctness tax of OrderLight must stay modest (and nothing like
	// the fence's multiple-x).
	ratio := float64(ol.Stats().ExecTime()) / float64(no.Stats().ExecTime())
	if ratio > 2.0 {
		t.Errorf("OrderLight/no-order time ratio = %.2f, want < 2.0", ratio)
	}
}

// TestMachineMultiGroupOrderLightPacket exercises the §5.3.1 extension:
// one OrderLight packet ordering two memory-groups at once. Writes land
// in groups 0 and 1, a single multi-group packet follows, then loads
// re-read both locations into TS and store them elsewhere; the loads
// must observe the writes.
func TestMachineMultiGroupOrderLightPacket(t *testing.T) {
	cfg := smallConfig(config.PrimitiveOrderLight)
	geom := geomOf(cfg)
	store := dram.NewStore(geom.LanesPerSlot)
	strd := int64(geom.Channels)

	// Group 0 = banks 0-3, group 1 = banks 4-7.
	src0 := geom.Encode(dram.Loc{Channel: 0, Bank: 0, Row: 0, Col: 0})
	src1 := geom.Encode(dram.Loc{Channel: 0, Bank: 4, Row: 0, Col: 0})
	dst0 := geom.Encode(dram.Loc{Channel: 0, Bank: 1, Row: 3, Col: 0})
	dst1 := geom.Encode(dram.Loc{Channel: 0, Bank: 5, Row: 3, Col: 0})
	seed := func(a isa.Addr, v int32) {
		vals := make([]int32, geom.LanesPerSlot)
		for i := range vals {
			vals[i] = v
		}
		store.Write(a, vals)
	}
	seed(src0, 100)
	seed(src1, 200)

	prog := Program{Channel: 0, Instrs: []isa.Instr{
		// Phase 1: scale both sources in place (writes in two groups).
		{Kind: isa.KindPIMScale, Op: isa.OpScale, Addr: src0, Count: 2, Strd: strd, Imm: 3},
		{Kind: isa.KindPIMScale, Op: isa.OpScale, Addr: src1, Count: 2, Strd: strd, Imm: 5},
		// One packet ordering both groups via the extension field.
		{Kind: isa.KindOrderLight, Group: 0, XGroups: []uint8{1}},
		// Phase 2: read back and copy out, in each group.
		{Kind: isa.KindPIMLoad, Addr: src0, Count: 2, Strd: strd},
		{Kind: isa.KindPIMLoad, Addr: src1, Count: 2, Strd: strd},
		{Kind: isa.KindOrderLight, Group: 0, XGroups: []uint8{1}},
		{Kind: isa.KindPIMStore, Addr: dst0, Count: 2, Strd: strd},
		{Kind: isa.KindPIMStore, Addr: dst1, Count: 2, Strd: strd},
	}}
	m, err := NewMachine(cfg, store, []Program{prog})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Correct {
		t.Fatalf("multi-group packet run incorrect (%d diff slots)", st.DiffSlots)
	}
	if got := store.Read(dst0)[0]; got != 300 {
		t.Fatalf("dst0 = %d, want 300 (load ordered after scale)", got)
	}
	if got := store.Read(dst1)[0]; got != 1000 {
		t.Fatalf("dst1 = %d, want 1000", got)
	}
	// The packet merged once per relevant sub-path set at each stage;
	// just assert it flowed (two packets injected).
	if st.OLCount != 2 {
		t.Fatalf("OLCount = %d, want 2", st.OLCount)
	}
}

func TestMachineMultiRouteNoC(t *testing.T) {
	// With the adaptive multi-route interconnect (§9 divergence point),
	// OrderLight stays correct and the unordered run stays broken.
	for _, routes := range []int{2, 4} {
		cfg := smallConfig(config.PrimitiveOrderLight)
		cfg.GPU.IcntRoutes = routes
		store, programs := vectorAddSetup(cfg, 8)
		m, err := NewMachine(cfg, store, programs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("%d routes: %v", routes, err)
		}
		if !st.Correct {
			t.Fatalf("%d routes: OrderLight run incorrect", routes)
		}

		cfgN := smallConfig(config.PrimitiveNone)
		cfgN.GPU.IcntRoutes = routes
		storeN, programsN := vectorAddSetup(cfgN, 8)
		mN, err := NewMachine(cfgN, storeN, programsN)
		if err != nil {
			t.Fatal(err)
		}
		stN, err := mN.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stN.Correct {
			t.Fatalf("%d routes: unordered run verified correct", routes)
		}
	}
}

func TestMachineTracerStampsCoherent(t *testing.T) {
	cfg := smallConfig(config.PrimitiveOrderLight)
	store, programs := vectorAddSetup(cfg, 2)
	m, err := NewMachine(cfg, store, programs)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(4096)
	m.SetTracer(tr)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	lcs := tr.Lifecycles()
	if len(lcs) == 0 {
		t.Fatal("tracer captured nothing")
	}
	icnt := sim.Time(cfg.GPU.InterconnectToL2) * sim.CoreTicks
	l2dram := sim.Time(cfg.GPU.L2ToDRAM) * sim.CoreTicks
	for _, lc := range lcs {
		s := lc.Stamps
		// Per-request stage stamps must be monotonic, and the pipe
		// stages must reflect at least their configured latencies.
		if s[trace.StageL2] != 0 && s[trace.StageL2]-s[trace.StageInject] < icnt {
			t.Fatalf("req %d reached L2 after %v, below the %v interconnect latency",
				lc.Req.ID, s[trace.StageL2]-s[trace.StageInject], icnt)
		}
		if s[trace.StageMC] != 0 && s[trace.StageToDRAM] != 0 &&
			s[trace.StageMC]-s[trace.StageToDRAM] < l2dram {
			t.Fatalf("req %d crossed L2->DRAM pipe too fast", lc.Req.ID)
		}
		last := sim.Time(0)
		for st := trace.StageInject; st <= trace.StageDevice; st++ {
			if s[st] == 0 {
				continue
			}
			if s[st] < last {
				t.Fatalf("req %d stage %v went backwards", lc.Req.ID, st)
			}
			last = s[st]
		}
	}
}

func TestMachineDeadline(t *testing.T) {
	cfg := smallConfig(config.PrimitiveOrderLight)
	cfg.Run.DeadlineMS = 1e-5 // 10 ns: nothing can finish
	store, programs := vectorAddSetup(cfg, 4)
	m, err := NewMachine(cfg, store, programs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, sim.ErrDeadline) {
		t.Fatalf("Run = %v, want ErrDeadline", err)
	}
}

func TestMachineValidation(t *testing.T) {
	cfg := smallConfig(config.PrimitiveOrderLight)
	store, programs := vectorAddSetup(cfg, 1)

	// Duplicate channel.
	dup := []Program{programs[0], programs[0]}
	if _, err := NewMachine(cfg, store, dup); err == nil {
		t.Error("duplicate-channel programs accepted")
	}
	// Out-of-range channel.
	bad := []Program{{Channel: 99}}
	if _, err := NewMachine(cfg, store, bad); err == nil {
		t.Error("out-of-range channel accepted")
	}
	// Too many programs.
	cfg2 := cfg
	cfg2.GPU.PIMSMs = 1
	cfg2.GPU.WarpsPerSM = 1
	cfg2.Memory.Channels = 1
	if _, err := NewMachine(cfg2, store, programs); err == nil {
		t.Error("more programs than warps accepted")
	}
	// Wrong store lanes.
	if _, err := NewMachine(cfg, dram.NewStore(4), programs); err == nil {
		t.Error("lane-mismatched store accepted")
	}
}

func TestExpandProgramLaneExpansion(t *testing.T) {
	cfg := smallConfig(config.PrimitiveOrderLight)
	geom := geomOf(cfg)
	p := Program{Channel: 1, Instrs: []isa.Instr{
		{Kind: isa.KindPIMLoad, Addr: geom.Encode(dram.Loc{Channel: 1, Bank: 0, Row: 0, Col: 0}), Count: 3, Strd: int64(geom.Channels)},
		{Kind: isa.KindOrderLight, Group: 2},
		{Kind: isa.KindFence},
	}}
	reqs := ExpandProgram(geom, cfg.CommandsPerTile(), p)
	if len(reqs) != 5 {
		t.Fatalf("expanded %d requests, want 5", len(reqs))
	}
	for lane := 0; lane < 3; lane++ {
		r := reqs[lane]
		if r.Kind != isa.KindPIMLoad || r.TSlot != lane {
			t.Fatalf("lane %d = %v", lane, r)
		}
		if loc := geom.Decode(r.Addr); loc.Col != lane || loc.Channel != 1 {
			t.Fatalf("lane %d decoded to %+v", lane, loc)
		}
	}
	if reqs[3].Kind != isa.KindOrderLight || reqs[3].Group != 2 {
		t.Fatalf("reqs[3] = %v", reqs[3])
	}
	if reqs[4].Kind != isa.KindFence {
		t.Fatalf("reqs[4] = %v", reqs[4])
	}
}

func TestHostTimeRoofline(t *testing.T) {
	cfg := config.Default()
	// Pure streaming: 324 GB at 324 GB/s effective = 1 s.
	bytes := int64(cfg.GPU.HostPeakGBs * cfg.GPU.HostEff * 1e9)
	got := HostTime(cfg, bytes, 0)
	if s := got.Seconds(); s < 0.99 || s > 1.01 {
		t.Fatalf("HostTime = %v s, want ~1", s)
	}
	// Compute-bound override.
	ops := int64(cfg.GPU.PeakGFLOPs * 2e9)
	got = HostTime(cfg, 1, ops)
	if s := got.Seconds(); s < 1.99 || s > 2.01 {
		t.Fatalf("compute-bound HostTime = %v s, want ~2", s)
	}
}

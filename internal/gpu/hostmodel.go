package gpu

import (
	"orderlight/internal/config"
	"orderlight/internal/sim"
)

// HostTime estimates the execution time of a kernel run on the host GPU
// alone (no PIM) with a roofline model: the kernel takes the larger of
// its memory time at the host's effective streaming bandwidth and its
// compute time at the device's peak arithmetic throughput.
//
// Substitution note (see DESIGN.md): the paper measured its GPU baseline
// bars in GPGPU-Sim. Every kernel in Table 2 is bandwidth-bound at the
// host (that is the premise of offloading it to PIM), so the roofline's
// memory term dominates and the baseline reduces to bytes moved over
// effective bandwidth — the same quantity the cycle-accurate baseline
// measures for streaming kernels.
func HostTime(cfg config.Config, bytes, ops int64) sim.Time {
	memSecs := float64(bytes) / HostEffectiveBW(cfg)
	compSecs := float64(ops) / (cfg.GPU.PeakGFLOPs * 1e9)
	secs := memSecs
	if compSecs > secs {
		secs = compSecs
	}
	return sim.Time(secs * sim.BaseTickHz)
}

// HostEffectiveBW returns the host's effective streaming bandwidth in
// bytes/s: the quoted device bandwidth (Table 1's 405 GB/s at 16
// channels) capped by the configured memory system's raw pin bandwidth,
// derated by HostEff.
func HostEffectiveBW(cfg config.Config) float64 {
	peak := cfg.GPU.HostPeakGBs * 1e9
	if raw := cfg.HostPeakBandwidth(); raw < peak {
		peak = raw
	}
	return peak * cfg.GPU.HostEff
}

package gpu

import (
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/isa"
)

func cpuConfig(p config.Primitive) config.Config {
	cfg := smallConfig(p)
	cfg.Host.Kind = config.HostCPU
	return cfg
}

func runVectorAddCPU(t *testing.T, prim config.Primitive, tiles int) *Machine {
	t.Helper()
	cfg := cpuConfig(prim)
	store, programs := vectorAddSetup(cfg, tiles)
	m, err := NewMachine(cfg, store, programs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOoOHostOrderLightCorrect(t *testing.T) {
	m := runVectorAddCPU(t, config.PrimitiveOrderLight, 8)
	st := m.Stats()
	if !st.Correct {
		t.Fatalf("OoO OrderLight run incorrect (%d diff slots)", st.DiffSlots)
	}
	if st.OLCount != 2*8*3 {
		t.Fatalf("OLCount = %d, want 48", st.OLCount)
	}
}

func TestOoOHostFenceCorrect(t *testing.T) {
	m := runVectorAddCPU(t, config.PrimitiveFence, 4)
	if !m.Stats().Correct {
		t.Fatal("OoO fence run incorrect")
	}
	if m.Stats().FenceCount != 2*4*3 {
		t.Fatalf("FenceCount = %d", m.Stats().FenceCount)
	}
}

func TestOoOHostSeqnoCorrect(t *testing.T) {
	m := runVectorAddCPU(t, config.PrimitiveSeqno, 4)
	if !m.Stats().Correct {
		t.Fatal("OoO seqno run incorrect")
	}
}

func TestOoOHostNoneIncorrect(t *testing.T) {
	// The reservation station issues memory out of order even within a
	// single tile, so the unordered OoO host corrupts faster than the
	// in-order GPU warp.
	m := runVectorAddCPU(t, config.PrimitiveNone, 4)
	st := m.Stats()
	if !st.Verified {
		t.Fatal("verification did not run")
	}
	if st.Correct {
		t.Fatal("OoO run without ordering verified correct; reservation-station reorder did not fire")
	}
}

func TestOoOHostOrderLightFasterThanFence(t *testing.T) {
	fe := runVectorAddCPU(t, config.PrimitiveFence, 8).Stats()
	ol := runVectorAddCPU(t, config.PrimitiveOrderLight, 8).Stats()
	if !(ol.ExecTime() < fe.ExecTime()) {
		t.Fatalf("OoO OrderLight (%v) not faster than fence (%v)", ol.ExecTime(), fe.ExecTime())
	}
	if ol.OLStallCycles >= fe.FenceStallCycles {
		t.Error("OrderLight dispatch stalls should be far below fence stalls")
	}
}

func TestOoOHostReordersWithinWindow(t *testing.T) {
	// Without a primitive, the device-issue order on a channel must show
	// program-order (Seq) inversions that originate at the core's
	// reservation station, not only at the memory controller.
	cfg := cpuConfig(config.PrimitiveNone)
	store, programs := vectorAddSetup(cfg, 4)
	m, err := NewMachine(cfg, store, programs)
	if err != nil {
		t.Fatal(err)
	}
	var log []isa.Request
	m.Controller(0).IssueLog = &log
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	inversions := 0
	for i := 1; i < len(log); i++ {
		if log[i].Seq < log[i-1].Seq {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no program-order inversions at the device under an OoO host with no primitive")
	}
}

func TestOoOHostValidation(t *testing.T) {
	cfg := cpuConfig(config.PrimitiveSeqno)
	cfg.Run.SeqnoCredits = cfg.GPU.RWQueueSize + 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("seqno credits above queue depth accepted on OoO host")
	}
	cfg2 := cpuConfig(config.PrimitiveOrderLight)
	cfg2.Host.ROBSize = 0
	if err := cfg2.Validate(); err == nil {
		t.Fatal("zero ROB accepted")
	}
	cfg3 := cpuConfig(config.PrimitiveOrderLight)
	cfg3.Host.Kind = "abacus"
	if err := cfg3.Validate(); err == nil {
		t.Fatal("unknown host kind accepted")
	}
}

package gpu

import (
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/stats"
)

// snapshot captures every stat a run produces that should be bit-stable
// across identical runs.
type snapshot struct {
	exec, fence, ol, credit, issue int64
	pim, host, hits, misses        int64
	fences, ols                    int64
	correct                        bool
}

func snap(st *stats.Run) snapshot {
	return snapshot{
		exec:    int64(st.ExecTime()),
		fence:   st.FenceStallCycles,
		ol:      st.OLStallCycles,
		credit:  st.CreditStallCycles,
		issue:   st.IssueStallCycles,
		pim:     st.PIMCommands,
		host:    st.HostCommands,
		hits:    st.RowHits,
		misses:  st.RowMisses,
		fences:  st.FenceCount,
		ols:     st.OLCount,
		correct: st.Correct,
	}
}

// TestMachineFullyDeterministic: two machines built from the same
// configuration and seed must produce identical statistics — the
// property the integer-tick dual-clock engine exists for.
func TestMachineFullyDeterministic(t *testing.T) {
	for _, prim := range []config.Primitive{
		config.PrimitiveNone, config.PrimitiveFence,
		config.PrimitiveSeqno, config.PrimitiveOrderLight,
	} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			run := func() snapshot {
				cfg := smallConfig(prim)
				store, programs := vectorAddSetup(cfg, 4)
				m, err := NewMachine(cfg, store, programs)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatal(err)
				}
				return snap(m.Stats())
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestOoOHostDeterministic covers the host with internal randomness: the
// reservation-station arbitration is seeded, so identical seeds must
// still replay exactly.
func TestOoOHostDeterministic(t *testing.T) {
	run := func() snapshot {
		cfg := cpuConfig(config.PrimitiveOrderLight)
		store, programs := vectorAddSetup(cfg, 4)
		m, err := NewMachine(cfg, store, programs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return snap(m.Stats())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("OoO runs with identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

// TestHostTrafficDeterministic: the injected host loads are seeded too.
func TestHostTrafficDeterministic(t *testing.T) {
	run := func() (snapshot, float64) {
		cfg := smallConfig(config.PrimitiveOrderLight)
		store, programs := vectorAddSetup(cfg, 4)
		m, err := NewMachine(cfg, store, programs)
		if err != nil {
			t.Fatal(err)
		}
		m.SetHostTraffic(HostTraffic{PerChannel: 16, EveryN: 10, Group: 1})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		lat, _ := m.HostLatency()
		return snap(m.Stats()), lat
	}
	a, la := run()
	b, lb := run()
	if a != b || la != lb {
		t.Fatalf("host-traffic runs diverged: %+v/%v vs %+v/%v", a, la, b, lb)
	}
	if a.host != 2*16 {
		t.Fatalf("host commands = %d, want 32", a.host)
	}
}

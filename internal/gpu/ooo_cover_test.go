package gpu

import (
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/core"
	"orderlight/internal/fault"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
)

// driveCore ticks a stand-alone OoO core to completion, acknowledging
// outstanding requests between cycles (standing in for the memory
// side's ack path). Returns the number of ticks consumed.
func driveCore(t *testing.T, c *OoOCore, ft *core.FenceTracker) int {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if c.Done() {
			return i
		}
		for ft.Outstanding(0) > 0 {
			ft.Acked(0)
		}
		c.Tick(sim.Time(i))
	}
	t.Fatal("core did not finish within 1M ticks")
	return 0
}

// newTestCore builds a stand-alone core over channel 0 of the
// vector_add program with a caller-supplied send hook.
func newTestCore(cfg config.Config, tiles int, send func(isa.Request) bool) (*OoOCore, *core.FenceTracker, *stats.Run) {
	_, programs := vectorAddSetup(cfg, tiles)
	st := &stats.Run{}
	ft := core.NewFenceTracker(1)
	var nextID uint64
	return newOoOCore(0, cfg, geomOf(cfg), st, programs[0], ft, &nextID, send), ft, st
}

// TestOoOCoreWindowReplayUnderBackpressure drives the reservation
// station against a memory pipe that refuses every other send: window
// entries must be replayed on later cycles (never lost or duplicated)
// and the refusals must be accounted as issue stalls.
func TestOoOCoreWindowReplayUnderBackpressure(t *testing.T) {
	cfg := cpuConfig(config.PrimitiveOrderLight)
	seen := map[uint64]int{}
	deny := false
	var c *OoOCore
	c, ft, st := newTestCore(cfg, 2, func(r isa.Request) bool {
		deny = !deny
		if deny {
			return false
		}
		seen[r.ID]++
		return true
	})
	driveCore(t, c, ft)
	if st.IssueStallCycles == 0 {
		t.Error("backpressure produced no issue stalls")
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("request %d issued %d times; window replay duplicated it", id, n)
		}
	}
	wantPIM := 2 /*tiles*/ * 3 /*phases*/ * cfg.CommandsPerTile()
	wantOL := 2 * 3
	if len(seen) != wantPIM+wantOL {
		t.Fatalf("issued %d distinct requests, want %d", len(seen), wantPIM+wantOL)
	}
}

// TestOoOCoreFenceFlushUnderBackpressure covers the fence path: with
// the pipe refusing sends, dispatch must stall at the fence until the
// window flushes and every issued request is acknowledged, then retire
// it exactly once per fence.
func TestOoOCoreFenceFlushUnderBackpressure(t *testing.T) {
	cfg := cpuConfig(config.PrimitiveFence)
	deny := false
	var c *OoOCore
	c, ft, st := newTestCore(cfg, 2, func(r isa.Request) bool {
		deny = !deny
		return !deny
	})
	driveCore(t, c, ft)
	if st.FenceCount != 2*3 {
		t.Fatalf("FenceCount = %d, want 6", st.FenceCount)
	}
	if st.FenceStallCycles == 0 {
		t.Error("fences never stalled while the window was non-empty")
	}
}

// TestOoOCoreROBFill pins the reorder-buffer capacity stall: a 1-entry
// window forces dispatch to block on a full ROB every cycle the
// previous request has not issued yet.
func TestOoOCoreROBFill(t *testing.T) {
	cfg := cpuConfig(config.PrimitiveOrderLight)
	cfg.Host.ROBSize = 1
	c, ft, st := newTestCore(cfg, 1, func(r isa.Request) bool { return true })
	driveCore(t, c, ft)
	if st.IssueStallCycles == 0 {
		t.Error("1-entry ROB produced no fill stalls")
	}
	if c.w.state != warpDone {
		t.Error("program did not retire")
	}
}

// TestOoOCoreSkipPanicsWhenRunnable pins the quiescence-protocol
// contract: Skip on a core that could actually act (runnable PIM
// instruction, no fence, no credit stall) is a skip-ahead engine bug
// and must panic rather than silently corrupt stall accounting.
func TestOoOCoreSkipPanicsWhenRunnable(t *testing.T) {
	cfg := cpuConfig(config.PrimitiveOrderLight)
	c, _, _ := newTestCore(cfg, 1, func(r isa.Request) bool { return true })
	defer func() {
		if recover() == nil {
			t.Fatal("Skip on a runnable core did not panic")
		}
	}()
	c.Skip(3) // pc sits on the first PIM instruction: runnable
}

// TestOoOCoreSkipNoOps covers the legal no-op skips: zero cycles, and a
// finished core.
func TestOoOCoreSkipNoOps(t *testing.T) {
	cfg := cpuConfig(config.PrimitiveOrderLight)
	c, ft, st := newTestCore(cfg, 1, func(r isa.Request) bool { return true })
	c.Skip(0) // k <= 0: nothing, whatever the state
	driveCore(t, c, ft)
	c.Skip(100) // done core: nothing
	if st.FenceStallCycles != 0 || st.CreditStallCycles != 0 {
		t.Errorf("no-op skips credited stalls: fence %d credit %d", st.FenceStallCycles, st.CreditStallCycles)
	}
}

// TestOoOHostDropFaultRetiresPrimitivesEarly runs the full OoO machine
// with a full-rate ordering-drop plan: every fence (or OrderLight
// packet) must retire without draining, the plan must account each
// drop, and the run must stay live and verified-wrong (vector_add at
// this scale corrupts without ordering).
func TestOoOHostDropFaultRetiresPrimitivesEarly(t *testing.T) {
	for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
		cfg := cpuConfig(prim)
		store, programs := vectorAddSetup(cfg, 8)
		m, err := NewMachine(cfg, store, programs)
		if err != nil {
			t.Fatal(err)
		}
		plan := fault.NewPlan(fault.Spec{Class: fault.ClassDropOrdering, Seed: 1, Rate: 1})
		m.SetFaultPlan(plan)
		st, err := m.Run()
		if err != nil {
			t.Fatalf("%v: %v", prim, err)
		}
		if plan.Injections() == 0 {
			t.Fatalf("%v: full-rate drop plan injected nothing", prim)
		}
		rep := plan.Report()
		if prim == config.PrimitiveFence {
			if st.FenceCount != 0 {
				t.Errorf("fence: %d fences retired normally under a full drop plan", st.FenceCount)
			}
			if rep.Points[fault.PointFenceDropped] == 0 {
				t.Error("fence: no fence-dropped injections recorded")
			}
		} else {
			if st.OLCount != 0 {
				t.Errorf("orderlight: %d packets sent under a full drop plan", st.OLCount)
			}
			if rep.Points[fault.PointOLDropped] == 0 {
				t.Error("orderlight: no ol-dropped injections recorded")
			}
		}
		if !st.Verified || st.Correct {
			t.Errorf("%v: dropped ordering still verified correct (verified=%t)", prim, st.Verified)
		}
	}
}

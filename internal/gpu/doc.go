// Package gpu models the host accelerator: the streaming-multiprocessor
// (SM) front end of Figure 6 — warp scheduler, operand collector, LDST
// queue — together with the whole-machine assembly (SMs, interconnect,
// L2 slices, memory controllers) and the roofline host-execution model
// used for the GPU baseline bars of Figures 10b, 12 and 13.
//
// # Ordering primitives at the core
//
// The SM executes PIM kernels: warp programs of fine-grained PIM
// instructions plus ordering primitives. The two primitives differ
// exactly as §5 describes:
//
//   - Fence: the warp stalls until every prior PIM request has been
//     issued to the DRAM device and acknowledged (FenceTracker). The
//     round-trip-per-dependence cost is the fence-stall bars of
//     Figures 5 and 10b.
//   - OrderLight: the warp waits only until the operand collector's
//     per-(channel, group) counter reads zero, then injects the packet
//     into the LDST queue and continues (CollectorCounter, §5.3.1).
//
// # Machine assembly and engines
//
// Machine wires SMs through the interconnect, L2 slices and per-channel
// memory controllers, and drives both clock domains on the sim engine.
// It implements the quiescence hints (NextWork) and closed-form credit
// accounting (Skip) that make the skip-ahead engine byte-identical to
// the dense reference, and hosts the observability attachment points:
// SetTracer (stage-crossing ring buffer), SetSink (streaming event
// export, internal/obs) and SetSampler (periodic counter snapshots,
// internal/stats). The §9 OoO-CPU front end (ooo.go) plugs into the
// same machine behind the host interface.
package gpu

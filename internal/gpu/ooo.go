package gpu

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/core"
	"orderlight/internal/dram"
	"orderlight/internal/fault"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
)

// host is the front-end abstraction the machine drives: SIMT SMs (the
// paper's evaluation host) or OoO CPU cores (the §9 extension).
//
// NextWork and Skip are the quiescence protocol of the skip-ahead
// engine: NextWork reports the earliest time at or after now at which
// Tick could change any state or statistic on its own (sim.TimeInf when
// only external input — an acknowledgment — can wake the host), and
// Skip credits n elided idle cycles to the per-cycle stall counters so
// they stay byte-identical with a dense run.
type host interface {
	Tick(now sim.Time)
	Done() bool
	NextWork(now sim.Time) sim.Time
	Skip(n int64)
}

// OoOCore models an out-of-order CPU core running one PIM kernel, per
// the paper's conclusion: renaming/reservation stations can reorder the
// moment a memory operation leaves the core, so ordering must be
// maintained there the way the operand collector maintains it on a GPU.
//
// The model: instruction lanes dispatch in program order into a
// reorder-buffer/reservation-station window; memory issue picks *any*
// ready window entry each cycle (seeded pseudo-random arbitration — the
// adversarial reordering source). An OrderLight instruction blocks
// dispatch only until the window holds no older PIM request for its
// group(s), then injects its packet; a fence blocks dispatch until the
// window is empty AND every issued request has been acknowledged from
// the memory side.
type OoOCore struct {
	id   int
	cfg  config.Config
	geom dram.Geometry
	st   *stats.Run

	w      warp // reuses the warp program-cursor state (one thread per core)
	window []isa.Request
	rs     *core.CollectorCounter // unissued PIM requests per (channel, group)
	ft     *core.FenceTracker
	rng    *sim.Rand

	send   func(r isa.Request) bool
	nextID *uint64

	// fault, when non-nil, can no-op ordering instructions at dispatch
	// (ClassDropOrdering); consulted identically by dispatch and
	// NextWork. Armed by Machine.SetFaultPlan; methods are nil-safe.
	fault *fault.Plan
}

// newOoOCore builds one CPU core driving the given channel's program.
func newOoOCore(id int, cfg config.Config, geom dram.Geometry, st *stats.Run,
	prog Program, ft *core.FenceTracker, nextID *uint64, send func(isa.Request) bool) *OoOCore {
	return &OoOCore{
		id:     id,
		cfg:    cfg,
		geom:   geom,
		st:     st,
		w:      warp{id: id, channel: prog.Channel, prog: prog.Instrs},
		rs:     core.NewCollectorCounterBudget(geom.Channels, geom.Groups, cfg.GPU.CollectorTags),
		ft:     ft,
		rng:    sim.NewRand(cfg.Run.Seed ^ 0x0002_a0c0 ^ uint64(id)<<40),
		send:   send,
		nextID: nextID,
	}
}

// Done reports whether the core retired its program and drained its
// window.
func (c *OoOCore) Done() bool {
	return c.w.state == warpDone && len(c.window) == 0
}

// Tick advances the core one cycle: memory issue first (so freshly
// dispatched lanes wait at least a cycle), then dispatch.
func (c *OoOCore) Tick(now sim.Time) {
	c.issueMemory()
	c.dispatch()
}

// NextWork reports when the core could next act on its own. A non-empty
// window forces the current cycle: issueMemory draws from the arbitration
// PRNG every such cycle, and skipping would desynchronize the stream a
// dense run consumes. With an empty window the core is quiescent exactly
// when dispatch is blocked on external acknowledgments (fence drain or
// seqno credits); everything else can act immediately.
func (c *OoOCore) NextWork(now sim.Time) sim.Time {
	if len(c.window) > 0 {
		return now
	}
	if c.w.state == warpDone {
		return sim.TimeInf
	}
	if c.w.pc >= len(c.w.prog) {
		return now // one tick marks the core done
	}
	in := c.w.prog[c.w.pc]
	switch in.Kind {
	case isa.KindFence:
		if !c.ft.Drained(c.w.id) && !c.fault.ShouldDropOrdering(c.w.id, c.w.pc) {
			return sim.TimeInf
		}
	case isa.KindOrderLight:
		// Window empty ⇒ every reservation-station counter is zero ⇒ the
		// packet can inject this cycle (send backpressure still spins
		// densely, which is what we want for IssueStallCycles).
	default:
		if c.cfg.Run.Primitive == config.PrimitiveSeqno &&
			c.ft.Outstanding(c.w.id)+len(c.window) >= c.cfg.Run.SeqnoCredits {
			return sim.TimeInf
		}
	}
	return now
}

// Skip credits k elided idle cycles. The core only skips while dispatch
// is blocked at its first slot on a fence or credit stall, each of which
// accrues exactly one stall-counter increment per dense cycle.
func (c *OoOCore) Skip(k int64) {
	if c.w.state == warpDone || k <= 0 {
		return
	}
	in := c.w.prog[c.w.pc]
	switch {
	case in.Kind == isa.KindFence:
		c.w.state = warpFence
		c.st.FenceStallCycles += k
	case c.cfg.Run.Primitive == config.PrimitiveSeqno:
		c.st.CreditStallCycles += k
	default:
		panic("gpu: OoO core skipped cycles while runnable (quiescence hint bug)")
	}
}

// issueMemory sends up to MemPorts window entries into the memory pipe,
// chosen pseudo-randomly among all waiting entries — the reservation
// station does not honor program order between independent requests.
func (c *OoOCore) issueMemory() {
	for port := 0; port < c.cfg.Host.MemPorts && len(c.window) > 0; port++ {
		i := c.rng.Intn(len(c.window))
		r := c.window[i]
		if !c.send(r) {
			c.st.IssueStallCycles++
			return
		}
		c.rs.Release(r.Channel, r.Group)
		if r.Kind.IsPIM() {
			c.ft.Issued(c.w.id)
		}
		c.window = append(c.window[:i], c.window[i+1:]...)
	}
}

// dispatch moves up to DispatchWidth program lanes into the window, in
// program order, resolving ordering instructions at the dispatch stage.
func (c *OoOCore) dispatch() {
	for slot := 0; slot < c.cfg.Host.DispatchWidth; slot++ {
		if c.w.pc >= len(c.w.prog) {
			c.w.state = warpDone
			return
		}
		in := c.w.prog[c.w.pc]
		switch in.Kind {
		case isa.KindFence:
			if c.fault.ShouldDropOrdering(c.w.id, c.w.pc) {
				// Injected fault: the fence retires without draining the
				// window or waiting for acknowledgments.
				c.fault.Record(fault.PointFenceDropped)
				c.w.state = warpReady
				c.w.pc++
				continue
			}
			c.w.state = warpFence
			if len(c.window) > 0 || !c.ft.Drained(c.w.id) {
				c.st.FenceStallCycles++
				return
			}
			c.st.FenceCount++
			c.w.state = warpReady
			c.w.pc++
		case isa.KindOrderLight:
			if c.fault.ShouldDropOrdering(c.w.id, c.w.pc) {
				// Injected fault: no packet is built; the number is still
				// consumed so surviving packets keep increasing numbers.
				c.fault.Record(fault.PointOLDropped)
				c.w.pktNum++
				c.w.state = warpReady
				c.w.pc++
				continue
			}
			c.w.state = warpOL
			drained := c.rs.Zero(c.w.channel, in.Group)
			for _, g := range in.XGroups {
				drained = drained && c.rs.Zero(c.w.channel, int(g))
			}
			if !drained {
				c.st.OLStallCycles++
				return
			}
			*c.nextID++
			pkt := isa.Request{
				ID: *c.nextID, Kind: isa.KindOrderLight,
				Channel: c.w.channel, Group: in.Group,
				SM: c.id, Warp: c.w.id, Seq: c.w.seq,
				OL: isa.OLPacket{
					PktID:       isa.PktIDOrderLight,
					Channel:     uint8(c.w.channel),
					Group:       uint8(in.Group),
					Number:      c.w.pktNum,
					ExtraGroups: in.XGroups,
				},
			}
			c.w.seq++
			c.w.pktNum++
			if !c.send(pkt) {
				c.st.IssueStallCycles++
				return
			}
			c.st.OLCount++
			c.st.WarpInstrs++
			c.w.state = warpReady
			c.w.pc++
		default:
			if !in.Kind.IsPIM() {
				panic(fmt.Sprintf("gpu: OoO core %d cannot dispatch %v", c.id, in.Kind))
			}
			if c.cfg.Run.Primitive == config.PrimitiveSeqno &&
				c.ft.Outstanding(c.w.id)+len(c.window) >= c.cfg.Run.SeqnoCredits {
				c.st.CreditStallCycles++
				return
			}
			if len(c.window) >= c.cfg.Host.ROBSize {
				c.st.IssueStallCycles++
				return
			}
			r := laneRequest(c.cfg, c.geom, &c.w, in, c.id, c.nextID)
			c.window = append(c.window, r)
			c.rs.Alloc(r.Channel, r.Group)
			c.w.lane++
			if c.w.lane >= in.Count {
				c.w.lane = 0
				c.w.pc++
				c.st.WarpInstrs++
			}
		}
	}
}

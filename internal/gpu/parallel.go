package gpu

import (
	"runtime"

	"orderlight/internal/dram"
	"orderlight/internal/isa"
	"orderlight/internal/obs"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
	"orderlight/internal/trace"
)

// The parallel engine (DESIGN.md §4h) keeps the skip-ahead event loop
// untouched and parallelizes the work *inside* each fired clock edge:
// the machine's channels are grouped into shards, each shard runs its
// channels' per-tick work on a pool worker, and every cross-shard
// effect (trace records, sink events, issue callbacks, host-hit
// completions) is staged in a per-channel op log and replayed on the
// coordinator in ascending channel order at the same engine instant.
//
// Determinism holds because
//   - channels never read each other's state inside a tick (pipes,
//     slices, controllers and PIM units are channel-local),
//   - shared mutable state is either redirected per channel for the
//     run (stats to a private Run, PIM stores to a copy-on-write
//     overlay) or reached only through the replayed op logs (the ack
//     pipe, host-latency accounting, the event sink, the tracer),
//   - replay order is a pure function of the channel index, never of
//     goroutine scheduling — so any shard count, including 1, produces
//     byte-identical events, stats and memory images.
//
// The barrier is every fired edge; skip-ahead already elides idle
// edges, so the fences land exactly at the quiescence protocol's sync
// points and no new fallback conditions exist (host traffic, CGA,
// refresh and OoO hosts all ride the sequential coordinator phase).

// parOp kinds. A single variant type keeps one log per channel so the
// intra-channel interleaving of records, device events and issue
// callbacks replays exactly as sequential execution produced it.
const (
	opRecord  = iota // a Machine.record stage crossing
	opEvent          // a controller sink event
	opIssue          // a controller OnIssue callback
	opHostHit        // an L2 host-hit completion
	opDrop           // a sink Drop count
)

// parOp is one staged cross-shard effect.
type parOp struct {
	kind  uint8
	stage trace.Stage
	r     isa.Request
	ev    obs.Event
	n     int64
}

// parSink stages a controller's sink traffic into its channel's op log.
type parSink struct{ log *[]parOp }

func (s *parSink) Emit(ev obs.Event) { *s.log = append(*s.log, parOp{kind: opEvent, ev: ev}) }
func (s *parSink) Drop(n int64)      { *s.log = append(*s.log, parOp{kind: opDrop, n: n}) }

// parState is the parallel engine's run state.
type parState struct {
	installed bool
	shards    int       // configured shard count (resolved, >= 1)
	pool      *sim.Pool // fork-join pool, created at install
	groups    [][]int   // shard -> contiguous channel group
	coreTasks []func()  // one per shard, for coreTick regions
	memTasks  []func()  // one per shard, for memTick regions
	memCycle  int64     // cycle argument for the current memTick region
	observed  bool      // tracer or sink armed: stage record ops too
	chStats   []*stats.Run
	overlays  []*dram.Overlay
	log1      [][]parOp // coreTick pass 1: icnt->slice records, host hits
	log2      [][]parOp // coreTick pass 2: slice->l2dram records
	logM      [][]parOp // memTick: MC-accept records, sink events, issues
}

// SetParallel arms the intra-tick parallel engine with the given shard
// count; shards <= 0 picks min(GOMAXPROCS, channels). Must be called
// before Run. The shard count changes wall-clock time only — results
// are byte-identical for every value, which is what the shard-
// sensitivity benchmark demonstrates.
func (m *Machine) SetParallel(shards int) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if n := len(m.mcs); shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	m.par = &parState{shards: shards}
}

// Parallel reports whether the parallel engine is armed.
func (m *Machine) Parallel() bool { return m.par != nil }

// ParallelShards returns the resolved shard count (0 when not armed).
func (m *Machine) ParallelShards() int {
	if m.par == nil {
		return 0
	}
	return m.par.shards
}

// parInstall swaps the machine onto its sharded plumbing. It runs at
// the top of Run, after every Set* hook has been armed: controllers
// count into private stats, PIM units execute against per-channel
// overlays, and controller/slice callbacks stage into the op logs.
func (m *Machine) parInstall() {
	p := m.par
	n := len(m.mcs)
	p.observed = m.tracer != nil || m.sink != nil
	p.pool = sim.NewPool(p.shards)
	p.chStats = make([]*stats.Run, n)
	p.overlays = make([]*dram.Overlay, n)
	p.log1 = make([][]parOp, n)
	p.log2 = make([][]parOp, n)
	p.logM = make([][]parOp, n)
	for ch := 0; ch < n; ch++ {
		ch := ch
		p.chStats[ch] = stats.New(m.cfg.BytesPerCommand())
		m.mcs[ch].SetStats(p.chStats[ch])
		p.overlays[ch] = dram.NewOverlay(m.store)
		m.mcs[ch].Unit().SetMemory(p.overlays[ch])
		m.mcs[ch].OnIssue = func(r isa.Request) {
			p.logM[ch] = append(p.logM[ch], parOp{kind: opIssue, r: r})
		}
		if m.sink != nil {
			m.mcs[ch].Sink = &parSink{log: &p.logM[ch]}
		}
		m.slices[ch].OnHostHit = func(r isa.Request) {
			p.log1[ch] = append(p.log1[ch], parOp{kind: opHostHit, r: r})
		}
	}
	// Contiguous channel groups, remainder spread over the low shards.
	p.groups = make([][]int, 0, p.shards)
	per, rem := n/p.shards, n%p.shards
	next := 0
	for s := 0; s < p.shards; s++ {
		size := per
		if s < rem {
			size++
		}
		g := make([]int, 0, size)
		for i := 0; i < size; i++ {
			g = append(g, next)
			next++
		}
		p.groups = append(p.groups, g)
	}
	for _, g := range p.groups {
		g := g
		p.coreTasks = append(p.coreTasks, func() {
			for _, ch := range g {
				m.coreShard(ch)
			}
		})
		p.memTasks = append(p.memTasks, func() {
			for _, ch := range g {
				m.memShard(ch, p.memCycle)
			}
		})
	}
	p.installed = true
}

// parUninstall folds outstanding shard state and points the machine
// back at its sequential plumbing, so post-run inspection (tests
// calling ticks directly, Verify, state capture) sees the same machine
// a sequential run would leave behind.
func (m *Machine) parUninstall() {
	p := m.par
	m.foldPar()
	p.installed = false
	for ch := range m.mcs {
		m.mcs[ch].SetStats(m.st)
		m.mcs[ch].Unit().SetMemory(m.store)
		m.mcs[ch].OnIssue = m.onIssue
		m.mcs[ch].Sink = m.sink
		m.slices[ch].OnHostHit = func(r isa.Request) { m.completeHost(r) }
	}
	p.pool.Close()
	p.pool = nil
}

// foldStats folds every channel's private counters into the machine's
// Run and zeroes them. Counters are plain sums, so folding at any
// barrier reproduces the sequential totals exactly; the fold is
// idempotent (a folded channel contributes zero).
func (m *Machine) foldStats() {
	if m.par == nil || !m.par.installed {
		return
	}
	for _, st := range m.par.chStats {
		m.st.FoldFrom(st)
	}
}

// foldPar makes all globally-visible state current: channel counters
// fold into the machine's Run and overlay deltas write back into the
// master store. Channels write disjoint address sets, so the store
// fold is order-independent. Called lazily at the points that read
// global state: sampler deadlines, state capture, verification, and
// the end of Run.
func (m *Machine) foldPar() {
	if m.par == nil || !m.par.installed {
		return
	}
	m.foldStats()
	for _, ov := range m.par.overlays {
		ov.Fold()
	}
}

// replayLog replays one channel's staged ops in logged order and
// resets the log. Replay happens at the same engine instant the ops
// were staged at, so every timestamp and side effect matches the
// sequential engine's.
func (m *Machine) replayLog(log *[]parOp) {
	for i := range *log {
		op := &(*log)[i]
		switch op.kind {
		case opRecord:
			m.record(op.stage, op.r)
		case opEvent:
			m.sink.Emit(op.ev)
		case opIssue:
			m.onIssue(op.r)
		case opHostHit:
			m.completeHost(op.r)
		case opDrop:
			m.sink.Drop(op.n)
		}
	}
	*log = (*log)[:0]
}

// coreShard is one channel's share of a core tick: the two transfer
// stages of the sequential coreTick, with their stage records staged
// for ordered replay. Loop structure note: sequential coreTick runs
// the icnt->slice stage for every channel, then slice->l2dram for
// every channel; the two stages of one channel do not interact within
// a tick across channels, so running them back-to-back per channel is
// state-equivalent — only the record order must be repaired, which is
// why the two passes stage into separate logs.
func (m *Machine) coreShard(ch int) {
	now := m.eng.Now()
	p := m.par
	if r, ok := m.icnt[ch].Peek(now); ok && m.slices[ch].CanAccept(r) {
		m.icnt[ch].Pop(now)
		m.slices[ch].Accept(r)
		if p.observed {
			p.log1[ch] = append(p.log1[ch], parOp{kind: opRecord, stage: trace.StageL2, r: r})
		}
	}
	if m.l2dram[ch].CanPush() {
		if r, ok := m.slices[ch].Pop(); ok {
			m.l2dram[ch].Push(now, r)
			if p.observed {
				p.log2[ch] = append(p.log2[ch], parOp{kind: opRecord, stage: trace.StageToDRAM, r: r})
			}
		}
	}
}

// memShard is one channel's share of a memory tick: pipe hand-off into
// the controller plus the controller's own cycle, with every sink
// event and issue callback staged in the channel's log.
func (m *Machine) memShard(ch int, cycle int64) {
	now := m.eng.Now()
	mc := m.mcs[ch]
	if r, ok := m.l2dram[ch].Peek(now); ok && mc.CanAccept(r) {
		m.l2dram[ch].Pop(now)
		mc.Accept(r)
		if m.par.observed {
			m.par.logM[ch] = append(m.par.logM[ch], parOp{kind: opRecord, stage: trace.StageMC, r: r})
		}
	}
	mc.Tick(cycle)
}

// coreTickPar is the parallel engine's core tick: the sequential
// coordinator phases (sampling, host injection, ack drain, host issue)
// bracket a sharded transfer region whose staged effects replay in
// channel order.
func (m *Machine) coreTickPar() {
	now := m.eng.Now()
	p := m.par
	if m.sampler != nil {
		if m.sampler.NextCycle() <= now.CoreCycles() {
			// The sampler reads the machine's Run; make it current first.
			m.foldStats()
		}
		m.sampler.ObserveCycle(now)
	}
	m.injectHost()
	for {
		w, ok := m.acks.Pop(now)
		if !ok {
			break
		}
		m.ft.Acked(w)
	}
	if p.pool.Workers() < 2 {
		for ch := range m.mcs {
			m.coreShard(ch)
		}
	} else {
		p.pool.Run(p.coreTasks)
	}
	// Two replay passes mirror the sequential tick's two channel loops.
	for ch := range p.log1 {
		m.replayLog(&p.log1[ch])
	}
	for ch := range p.log2 {
		m.replayLog(&p.log2[ch])
	}
	for _, h := range m.hosts {
		h.Tick(now)
	}
}

// memTickPar is the parallel engine's memory tick: a sharded
// controller region followed by channel-ordered replay of the staged
// device events, records, and issue callbacks (which push the ack pipe
// in exactly the order the sequential engine would have).
func (m *Machine) memTickPar(cycle int64) {
	p := m.par
	if p.pool.Workers() < 2 {
		for ch := range m.mcs {
			m.memShard(ch, cycle)
		}
	} else {
		p.memCycle = cycle
		p.pool.Run(p.memTasks)
	}
	for ch := range p.logM {
		m.replayLog(&p.logM[ch])
	}
}

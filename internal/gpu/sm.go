package gpu

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/core"
	"orderlight/internal/dram"
	"orderlight/internal/fault"
	"orderlight/internal/isa"
	"orderlight/internal/obs"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
)

// Program is the PIM kernel executed by one warp. Each warp drives
// exactly one memory channel (§5.4: one host warp per PIM unit).
type Program struct {
	Channel int
	Instrs  []isa.Instr
}

// warpState enumerates why a warp is not issuing.
type warpState uint8

const (
	warpReady warpState = iota
	warpFence           // stalled on a fence drain
	warpOL              // waiting to inject an OrderLight packet
	warpDone
)

// warp is the execution state of one PIM warp.
type warp struct {
	id      int // global warp id
	channel int
	prog    []isa.Instr
	pc      int
	lane    int // next SIMT lane of the current instruction
	state   warpState
	pktNum  uint32 // per-(channel,group) OrderLight packet number; one warp owns its channel
	seq     uint64 // program-order sequence for emitted requests

	// stallAcc counts issue slots burned spinning on the current
	// ordering instruction (fence drain or OrderLight counter wait),
	// credited identically by step and Skip so the stall span emitted
	// when the instruction finally issues is engine-independent.
	stallAcc int64
}

// collectorEntry is a PIM request being gathered in the operand
// collector.
type collectorEntry struct {
	r     isa.Request
	ready sim.Time
}

// SM models one streaming multiprocessor running PIM warps.
type SM struct {
	id   int
	cfg  config.Config
	geom dram.Geometry
	st   *stats.Run

	warps     []*warp
	rr        int // round-robin warp pointer
	collector []collectorEntry
	ldst      *sim.Queue[isa.Request]
	cc        *core.CollectorCounter
	ft        *core.FenceTracker

	// send pushes a request into the interconnect toward its channel;
	// it returns false when the channel pipe is full this cycle.
	send func(r isa.Request) bool

	// sink, when non-nil, receives warp-track ordering events: a span
	// for each fence/OrderLight stall episode and an instant when the
	// primitive issues. Armed by Machine.SetSink.
	sink obs.Sink

	// fault, when non-nil, can no-op ordering instructions at issue
	// (ClassDropOrdering). Consulted identically by stall, step and —
	// through stall — NextWork, keyed by static instruction location,
	// so all three always agree. Armed by Machine.SetFaultPlan;
	// decision methods are nil-safe.
	fault *fault.Plan

	nextID *uint64 // shared request-ID counter

	skipScratch []int // active-warp index buffer reused by Skip
}

// newSM builds an SM hosting the given warps.
func newSM(id int, cfg config.Config, geom dram.Geometry, st *stats.Run,
	warps []*warp, ft *core.FenceTracker, nextID *uint64, send func(isa.Request) bool) *SM {
	return &SM{
		id:    id,
		cfg:   cfg,
		geom:  geom,
		st:    st,
		warps: warps,
		// Preallocated to its bound so the append/shift cycle of the
		// collector never reallocates.
		collector: make([]collectorEntry, 0, cfg.GPU.CollectorUnits),
		ldst:      sim.NewQueue[isa.Request](cfg.GPU.LDSTQueueSize),
		cc:        core.NewCollectorCounterBudget(geom.Channels, geom.Groups, cfg.GPU.CollectorTags),
		ft:        ft,
		send:      send,
		nextID:    nextID,
	}
}

// Done reports whether every warp has retired its program and all
// SM-local buffers are empty.
func (s *SM) Done() bool {
	for _, w := range s.warps {
		if w.state != warpDone {
			return false
		}
	}
	return len(s.collector) == 0 && s.ldst.Len() == 0
}

// Tick advances the SM by one core cycle.
func (s *SM) Tick(now sim.Time) {
	s.drainLDST()
	s.completeCollector(now)
	s.issue(now)
}

// warpStall classifies why a warp cannot make progress this cycle. The
// zero value means the warp can issue (or retire) now.
type warpStall uint8

const (
	stallNone      warpStall = iota
	stallFence               // fence waiting on external acknowledgments
	stallOL                  // OrderLight waiting on the operand collector
	stallCredit              // seqno credits exhausted (external acks)
	stallCollector           // operand-collector units all busy
)

// stall classifies warp w against the SM's current state. It is the
// single source of truth shared by step (which acts on the
// classification), NextWork (which derives the quiescence hint from it)
// and Skip (which batch-credits the per-cycle stall counters).
func (s *SM) stall(w *warp) warpStall {
	if w.pc >= len(w.prog) {
		return stallNone // one tick retires the warp
	}
	in := w.prog[w.pc]
	switch in.Kind {
	case isa.KindFence:
		if s.fault.ShouldDropOrdering(w.id, w.pc) {
			return stallNone // the fence is no-oped; nothing to wait for
		}
		if !s.ft.Drained(w.id) {
			return stallFence
		}
		return stallNone
	case isa.KindOrderLight:
		if s.fault.ShouldDropOrdering(w.id, w.pc) {
			return stallNone // the packet is never built; no counter wait
		}
		drained := s.cc.Zero(w.channel, in.Group)
		for _, g := range in.XGroups {
			drained = drained && s.cc.Zero(w.channel, int(g))
		}
		if !drained || !s.ldst.CanPush() {
			return stallOL
		}
		return stallNone
	default:
		if !in.Kind.IsPIM() && !in.Kind.IsMemAccess() {
			panic(fmt.Sprintf("gpu: warp %d cannot issue %v", w.id, in.Kind))
		}
		if s.cfg.Run.Primitive == config.PrimitiveSeqno &&
			s.ft.Outstanding(w.id) >= s.cfg.Run.SeqnoCredits {
			return stallCredit
		}
		if len(s.collector) >= s.cfg.GPU.CollectorUnits {
			return stallCollector
		}
		return stallNone
	}
}

// NextWork reports the earliest time at or after now at which Tick could
// change any SM state or statistic on its own: now while anything is
// draining or issuable, the collector head's completion time while every
// warp waits on it, and sim.TimeInf when the only possible wake-up is
// external (a fence or credit acknowledgment arriving at the machine).
func (s *SM) NextWork(now sim.Time) sim.Time {
	if s.ldst.Len() > 0 {
		return now // drainLDST moves entries (or accrues IssueStallCycles on backpressure)
	}
	next := sim.TimeInf
	if len(s.collector) > 0 {
		ready := s.collector[0].ready
		if ready <= now {
			return now
		}
		next = ready
	}
	for _, w := range s.warps {
		if w.state == warpDone {
			continue
		}
		switch s.stall(w) {
		case stallNone:
			return now
		case stallFence, stallCredit:
			// External wake-up: the acknowledgment pipe is watched at the
			// machine level, so these contribute no edge here — but the
			// stall counters they accrue are credited by Skip.
		case stallOL, stallCollector:
			// Wakes when the collector head completes; its ready time is
			// already in next (the collector cannot be empty in either
			// state: busy units hold entries, and an OL waits only while
			// some counter is nonzero, i.e. an entry is un-released).
			if len(s.collector) == 0 {
				return now // defensive: hint bug, fall back to dense
			}
		}
	}
	return next
}

// Skip credits k elided idle cycles. The round-robin scheduler's dense
// behavior over a window where no warp can issue is closed-form: each
// cycle the first min(active, IssuePerCycle) active warps in cyclic
// order from rr burn an issue slot spinning on their stall (one stat
// increment each), and rr ends one past the last spinner. NextWork
// guarantees every non-retired warp is stall-classified for the whole
// window (collector and LDST state only change on this SM's own ticks).
func (s *SM) Skip(k int64) {
	active := s.skipScratch[:0]
	for i, w := range s.warps {
		if w.state != warpDone {
			active = append(active, i)
		}
	}
	s.skipScratch = active
	a := int64(len(active))
	if a == 0 || k <= 0 {
		return
	}
	slots := int64(s.cfg.GPU.IssuePerCycle)
	if slots > a {
		slots = a
	}
	total := k * slots
	// p0: position within active[] of the first spinner, i.e. the first
	// active warp at or after rr (cyclically).
	p0 := int64(0)
	for j, i := range active {
		if i >= s.rr {
			p0 = int64(j)
			break
		}
	}
	// Spinner t (t = 0..total-1) is active[(p0+t) mod a]: position j
	// spins q times, plus once more for the first `total mod a`
	// positions starting at p0.
	q, rem := total/a, total%a
	for j, i := range active {
		cnt := q
		if (int64(j)-p0+a)%a < rem {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		w := s.warps[i]
		switch s.stall(w) {
		case stallFence:
			w.state = warpFence
			s.st.FenceStallCycles += cnt
			w.stallAcc += cnt
		case stallOL:
			w.state = warpOL
			s.st.OLStallCycles += cnt
			w.stallAcc += cnt
		case stallCredit:
			s.st.CreditStallCycles += cnt
		case stallCollector:
			s.st.IssueStallCycles += cnt
		default:
			panic("gpu: SM skipped cycles while a warp was runnable (quiescence hint bug)")
		}
	}
	last := active[(p0+total-1)%a]
	s.rr = (last + 1) % len(s.warps)
}

// drainLDST moves up to IssuePerCycle requests per cycle from the LDST
// queue into the interconnect (the LDST unit's ports), subject to
// backpressure.
func (s *SM) drainLDST() {
	for port := 0; port < s.cfg.GPU.IssuePerCycle; port++ {
		r, ok := s.ldst.Peek()
		if !ok {
			return
		}
		if !s.send(r) {
			s.st.IssueStallCycles++
			return
		}
		s.ldst.Pop()
	}
}

// completeCollector releases finished operand-collector entries into the
// LDST queue, in order.
func (s *SM) completeCollector(now sim.Time) {
	for len(s.collector) > 0 {
		e := s.collector[0]
		if e.ready > now || !s.ldst.CanPush() {
			return
		}
		s.ldst.Push(e.r)
		s.cc.Release(e.r.Channel, e.r.Group)
		// Shift in place (the unit count is small) rather than reslice:
		// reslicing would shed capacity and make the append in step
		// reallocate every few cycles.
		copy(s.collector, s.collector[1:])
		s.collector = s.collector[:len(s.collector)-1]
	}
}

// issue runs the warp schedulers: up to IssuePerCycle instruction lanes
// per cycle, each from a distinct warp, round-robin.
func (s *SM) issue(now sim.Time) {
	n := len(s.warps)
	start := s.rr
	slots := s.cfg.GPU.IssuePerCycle
	for k := 0; k < n && slots > 0; k++ {
		i := (start + k) % n
		w := s.warps[i]
		if w.state == warpDone {
			continue
		}
		if s.step(w, now) {
			slots--
			s.rr = (i + 1) % n
		}
	}
}

// step attempts to advance warp w; it reports whether the warp consumed
// the issue slot. The blocked cases mirror Skip exactly (both act on the
// shared stall classification), so batch-crediting elided cycles stays
// byte-identical with spinning through them.
func (s *SM) step(w *warp, now sim.Time) bool {
	if w.pc >= len(w.prog) {
		w.state = warpDone
		return false
	}
	in := w.prog[w.pc]
	switch s.stall(w) {
	case stallFence:
		w.state = warpFence
		s.st.FenceStallCycles++
		w.stallAcc++
		return true // the warp occupies its slot spinning
	case stallOL:
		w.state = warpOL
		s.st.OLStallCycles++
		w.stallAcc++
		return true
	case stallCredit:
		// Credit-based flow control: the §8.1 baseline may not have
		// more unacknowledged requests in flight than the memory
		// side has reorder-buffer credits for.
		s.st.CreditStallCycles++
		return true
	case stallCollector:
		s.st.IssueStallCycles++
		return true
	}
	switch in.Kind {
	case isa.KindFence:
		if s.fault.ShouldDropOrdering(w.id, w.pc) {
			// Injected fault: the fence retires without waiting for the
			// drain and without counting as a primitive.
			s.fault.Record(fault.PointFenceDropped)
			w.state = warpReady
			w.pc++
			return true
		}
		s.st.FenceCount++
		s.emitOrdering(w, "fence", now)
		w.state = warpReady
		w.pc++
		return true
	case isa.KindOrderLight:
		if s.fault.ShouldDropOrdering(w.id, w.pc) {
			// Injected fault: no packet reaches the memory side; the
			// packet number is still consumed so surviving packets keep
			// strictly increasing numbers.
			s.fault.Record(fault.PointOLDropped)
			w.pktNum++
			w.state = warpReady
			w.pc++
			return true
		}
		pkt := isa.OLPacket{
			PktID:       isa.PktIDOrderLight,
			Channel:     uint8(w.channel),
			Group:       uint8(in.Group),
			Number:      w.pktNum,
			ExtraGroups: in.XGroups,
		}
		w.pktNum++
		*s.nextID++
		s.ldst.Push(isa.Request{
			ID: *s.nextID, Kind: isa.KindOrderLight,
			Channel: w.channel, Group: in.Group,
			SM: s.id, Warp: w.id, Seq: w.seq, OL: pkt,
		})
		w.seq++
		s.st.OLCount++
		s.st.WarpInstrs++
		s.emitOrdering(w, "orderlight", now)
		w.state = warpReady
		w.pc++
		return true
	default:
		r := laneRequest(s.cfg, s.geom, w, in, s.id, s.nextID)
		s.collector = append(s.collector, collectorEntry{
			r:     r,
			ready: now + sim.Time(s.cfg.GPU.CollectorLat)*sim.CoreTicks,
		})
		s.cc.Alloc(r.Channel, r.Group)
		if r.Kind.IsPIM() {
			// Host accesses are never fenced or acknowledged; only PIM
			// requests enter the fence tracker's outstanding count.
			s.ft.Issued(w.id)
		}
		w.lane++
		if w.lane >= in.Count {
			w.lane = 0
			w.pc++
			s.st.WarpInstrs++
		}
		return true
	}
}

// emitOrdering reports an ordering primitive issuing on warp w: the
// stall episode that preceded it as a duration span (its length is the
// per-warp slot count both engines credit identically, so dense and
// skip-ahead runs emit byte-identical streams) followed by an instant
// marking the issue itself. Resets the episode accumulator either way.
func (s *SM) emitOrdering(w *warp, name string, now sim.Time) {
	acc := w.stallAcc
	w.stallAcc = 0
	if s.sink == nil {
		return
	}
	track := obs.Track{Kind: "warp", ID: w.id}
	if acc > 0 {
		dur := sim.Time(acc) * sim.CoreTicks
		s.sink.Emit(obs.Event{
			Name: name + "-stall", Track: track,
			At: now - dur, Dur: dur,
			Detail: fmt.Sprintf("%d slots ch%d", acc, w.channel),
		})
	}
	s.sink.Emit(obs.Event{
		Name: name, Track: track, At: now,
		Detail: fmt.Sprintf("ch%d", w.channel),
	})
}

// laneRequest materializes the current lane of a warp (or OoO-thread)
// instruction as a memory-pipe request, resolving the address mapping
// the way the compiled PIM kernel would (§5.4). Each memory-group owns
// its own temporary-storage partition (§4.1 allows multiple PIM units
// per channel), so concurrent tiles in different groups never clobber
// each other's slots.
func laneRequest(cfg config.Config, geom dram.Geometry, w *warp, in isa.Instr, hostID int, nextID *uint64) isa.Request {
	*nextID++
	r := isa.Request{
		ID:      *nextID,
		Kind:    in.Kind,
		Op:      in.Op,
		Channel: w.channel,
		SM:      hostID,
		Warp:    w.id,
		Seq:     w.seq,
		Imm:     in.Imm,
		Group:   in.Group,
	}
	w.seq++
	if in.Kind.IsMemAccess() {
		r.Addr = in.Addr + isa.Addr(int64(w.lane)*in.Strd)
		loc := geom.Decode(r.Addr)
		if loc.Channel != w.channel {
			panic(fmt.Sprintf("gpu: warp %d (channel %d) built request for channel %d", w.id, w.channel, loc.Channel))
		}
		r.Bank, r.Row = loc.Bank, loc.Row
		r.Group = geom.GroupOf(loc.Bank)
	}
	n := cfg.CommandsPerTile()
	r.TSlot = r.Group*n + (in.TSlot+w.lane)%n
	return r
}

// Package gpu models the host accelerator: the streaming-multiprocessor
// (SM) front end of Figure 6 — warp scheduler, operand collector, LDST
// queue — together with the whole-machine assembly (SMs, interconnect,
// L2 slices, memory controllers) and the roofline host-execution model
// used for the GPU baseline bars of Figures 10b, 12 and 13.
//
// The SM executes PIM kernels: warp programs of fine-grained PIM
// instructions plus ordering primitives. The two primitives differ
// exactly as §5 describes:
//
//   - Fence: the warp stalls until every prior PIM request has been
//     issued to the DRAM device and acknowledged (FenceTracker).
//   - OrderLight: the warp waits only until the operand collector's
//     per-(channel, group) counter reads zero, then injects the packet
//     into the LDST queue and continues (CollectorCounter).
package gpu

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/core"
	"orderlight/internal/dram"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
)

// Program is the PIM kernel executed by one warp. Each warp drives
// exactly one memory channel (§5.4: one host warp per PIM unit).
type Program struct {
	Channel int
	Instrs  []isa.Instr
}

// warpState enumerates why a warp is not issuing.
type warpState uint8

const (
	warpReady warpState = iota
	warpFence           // stalled on a fence drain
	warpOL              // waiting to inject an OrderLight packet
	warpDone
)

// warp is the execution state of one PIM warp.
type warp struct {
	id      int // global warp id
	channel int
	prog    []isa.Instr
	pc      int
	lane    int // next SIMT lane of the current instruction
	state   warpState
	pktNum  uint32 // per-(channel,group) OrderLight packet number; one warp owns its channel
	seq     uint64 // program-order sequence for emitted requests
}

// collectorEntry is a PIM request being gathered in the operand
// collector.
type collectorEntry struct {
	r     isa.Request
	ready sim.Time
}

// SM models one streaming multiprocessor running PIM warps.
type SM struct {
	id   int
	cfg  config.Config
	geom dram.Geometry
	st   *stats.Run

	warps     []*warp
	rr        int // round-robin warp pointer
	collector []collectorEntry
	ldst      *sim.Queue[isa.Request]
	cc        *core.CollectorCounter
	ft        *core.FenceTracker

	// send pushes a request into the interconnect toward its channel;
	// it returns false when the channel pipe is full this cycle.
	send func(r isa.Request) bool

	nextID *uint64 // shared request-ID counter
}

// newSM builds an SM hosting the given warps.
func newSM(id int, cfg config.Config, geom dram.Geometry, st *stats.Run,
	warps []*warp, ft *core.FenceTracker, nextID *uint64, send func(isa.Request) bool) *SM {
	return &SM{
		id:     id,
		cfg:    cfg,
		geom:   geom,
		st:     st,
		warps:  warps,
		ldst:   sim.NewQueue[isa.Request](cfg.GPU.LDSTQueueSize),
		cc:     core.NewCollectorCounterBudget(geom.Channels, geom.Groups, cfg.GPU.CollectorTags),
		ft:     ft,
		send:   send,
		nextID: nextID,
	}
}

// Done reports whether every warp has retired its program and all
// SM-local buffers are empty.
func (s *SM) Done() bool {
	for _, w := range s.warps {
		if w.state != warpDone {
			return false
		}
	}
	return len(s.collector) == 0 && s.ldst.Len() == 0
}

// Tick advances the SM by one core cycle.
func (s *SM) Tick(now sim.Time) {
	s.drainLDST()
	s.completeCollector(now)
	s.issue(now)
}

// drainLDST moves up to IssuePerCycle requests per cycle from the LDST
// queue into the interconnect (the LDST unit's ports), subject to
// backpressure.
func (s *SM) drainLDST() {
	for port := 0; port < s.cfg.GPU.IssuePerCycle; port++ {
		r, ok := s.ldst.Peek()
		if !ok {
			return
		}
		if !s.send(r) {
			s.st.IssueStallCycles++
			return
		}
		s.ldst.Pop()
	}
}

// completeCollector releases finished operand-collector entries into the
// LDST queue, in order.
func (s *SM) completeCollector(now sim.Time) {
	for len(s.collector) > 0 {
		e := s.collector[0]
		if e.ready > now || !s.ldst.CanPush() {
			return
		}
		s.ldst.Push(e.r)
		s.cc.Release(e.r.Channel, e.r.Group)
		s.collector = s.collector[1:]
	}
}

// issue runs the warp schedulers: up to IssuePerCycle instruction lanes
// per cycle, each from a distinct warp, round-robin.
func (s *SM) issue(now sim.Time) {
	n := len(s.warps)
	start := s.rr
	slots := s.cfg.GPU.IssuePerCycle
	for k := 0; k < n && slots > 0; k++ {
		i := (start + k) % n
		w := s.warps[i]
		if w.state == warpDone {
			continue
		}
		if s.step(w, now) {
			slots--
			s.rr = (i + 1) % n
		}
	}
}

// step attempts to advance warp w; it reports whether the warp consumed
// the issue slot.
func (s *SM) step(w *warp, now sim.Time) bool {
	if w.pc >= len(w.prog) {
		w.state = warpDone
		return false
	}
	in := w.prog[w.pc]
	switch in.Kind {
	case isa.KindFence:
		w.state = warpFence
		if !s.ft.Drained(w.id) {
			s.st.FenceStallCycles++
			return true // the warp occupies its slot spinning
		}
		s.st.FenceCount++
		w.state = warpReady
		w.pc++
		return true
	case isa.KindOrderLight:
		w.state = warpOL
		drained := s.cc.Zero(w.channel, in.Group)
		for _, g := range in.XGroups {
			drained = drained && s.cc.Zero(w.channel, int(g))
		}
		if !drained || !s.ldst.CanPush() {
			s.st.OLStallCycles++
			return true
		}
		pkt := isa.OLPacket{
			PktID:       isa.PktIDOrderLight,
			Channel:     uint8(w.channel),
			Group:       uint8(in.Group),
			Number:      w.pktNum,
			ExtraGroups: in.XGroups,
		}
		w.pktNum++
		*s.nextID++
		s.ldst.Push(isa.Request{
			ID: *s.nextID, Kind: isa.KindOrderLight,
			Channel: w.channel, Group: in.Group,
			SM: s.id, Warp: w.id, Seq: w.seq, OL: pkt,
		})
		w.seq++
		s.st.OLCount++
		s.st.WarpInstrs++
		w.state = warpReady
		w.pc++
		return true
	default:
		if !in.Kind.IsPIM() && !in.Kind.IsMemAccess() {
			panic(fmt.Sprintf("gpu: warp %d cannot issue %v", w.id, in.Kind))
		}
		if s.cfg.Run.Primitive == config.PrimitiveSeqno &&
			s.ft.Outstanding(w.id) >= s.cfg.Run.SeqnoCredits {
			// Credit-based flow control: the §8.1 baseline may not have
			// more unacknowledged requests in flight than the memory
			// side has reorder-buffer credits for.
			s.st.CreditStallCycles++
			return true
		}
		if len(s.collector) >= s.cfg.GPU.CollectorUnits {
			s.st.IssueStallCycles++
			return true
		}
		r := laneRequest(s.cfg, s.geom, w, in, s.id, s.nextID)
		s.collector = append(s.collector, collectorEntry{
			r:     r,
			ready: now + sim.Time(s.cfg.GPU.CollectorLat)*sim.CoreTicks,
		})
		s.cc.Alloc(r.Channel, r.Group)
		if r.Kind.IsPIM() {
			// Host accesses are never fenced or acknowledged; only PIM
			// requests enter the fence tracker's outstanding count.
			s.ft.Issued(w.id)
		}
		w.lane++
		if w.lane >= in.Count {
			w.lane = 0
			w.pc++
			s.st.WarpInstrs++
		}
		return true
	}
}

// laneRequest materializes the current lane of a warp (or OoO-thread)
// instruction as a memory-pipe request, resolving the address mapping
// the way the compiled PIM kernel would (§5.4). Each memory-group owns
// its own temporary-storage partition (§4.1 allows multiple PIM units
// per channel), so concurrent tiles in different groups never clobber
// each other's slots.
func laneRequest(cfg config.Config, geom dram.Geometry, w *warp, in isa.Instr, hostID int, nextID *uint64) isa.Request {
	*nextID++
	r := isa.Request{
		ID:      *nextID,
		Kind:    in.Kind,
		Op:      in.Op,
		Channel: w.channel,
		SM:      hostID,
		Warp:    w.id,
		Seq:     w.seq,
		Imm:     in.Imm,
		Group:   in.Group,
	}
	w.seq++
	if in.Kind.IsMemAccess() {
		r.Addr = in.Addr + isa.Addr(int64(w.lane)*in.Strd)
		loc := geom.Decode(r.Addr)
		if loc.Channel != w.channel {
			panic(fmt.Sprintf("gpu: warp %d (channel %d) built request for channel %d", w.id, w.channel, loc.Channel))
		}
		r.Bank, r.Row = loc.Bank, loc.Row
		r.Group = geom.GroupOf(loc.Bank)
	}
	n := cfg.CommandsPerTile()
	r.TSlot = r.Group*n + (in.TSlot+w.lane)%n
	return r
}

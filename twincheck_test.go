package orderlight

// This file is the `make check-twin` gate. It holds the committed
// calibration artifact to the contract the twin engine advertises:
// seeded random cells the calibration pass never measured must land
// inside the artifact's recorded error envelope against the skip-ahead
// cycle engine, and cells the twin declines must escalate to a
// byte-identical cycle-engine run. The tests skip when
// calibration.olcal is absent so a fresh clone's `go test ./...`
// stays self-contained; the make target fails hard on a missing
// artifact instead of skipping.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/twin"
)

const calibrationArtifact = "calibration.olcal"

// checkTwinPredictor loads the committed calibration and confirms it
// targets the default configuration this gate replays cells on.
func checkTwinPredictor(t *testing.T) *twin.Predictor {
	t.Helper()
	if _, err := os.Stat(calibrationArtifact); err != nil {
		t.Skipf("%s not present; run `make calibrate`", calibrationArtifact)
	}
	p, err := twin.LoadPredictor(calibrationArtifact)
	if err != nil {
		t.Fatalf("load %s: %v", calibrationArtifact, err)
	}
	if h := twin.NormalizedConfigHash(config.Default()); h != p.Artifact().ConfigHash {
		t.Fatalf("calibration targets config %s, not the default %s — regenerate with `make calibrate`",
			p.Artifact().ConfigHash, h)
	}
	return p
}

// TestTwinCheckEnvelope draws seeded random cells per kernel family —
// a primitive, a temporary-storage size, and a log-uniform footprint
// inside the anchored range, none of which the calibration pass
// measured — and answers each on both the twin and the cycle engine.
// Every twin answer must sit inside the entry's recorded envelope,
// command counts must be exact, the median relative cycle error must
// stay under 10%, and the analytical answers must be at least 100x
// faster in aggregate than simulating — the properties the twin tier
// exists for.
func TestTwinCheckEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-engine ground truth is not short")
	}
	p := checkTwinPredictor(t)
	art := p.Artifact()

	byKernel := map[string][]twin.Entry{}
	for _, e := range art.Entries {
		byKernel[e.Kernel] = append(byKernel[e.Kernel], e)
	}
	var families []string
	for k := range byKernel {
		families = append(families, k)
	}
	sort.Strings(families)

	// Pinned seed: the sampled grid is identical on every run, so a
	// violation reproduces. Footprints are log-uniform over the anchored
	// range (rounded down to 1 KiB) — the anchors are powers of two, so
	// almost every draw is a size the fit has never seen.
	const perFamily = 2
	rng := rand.New(rand.NewSource(20260807))
	type cell struct {
		entry twin.Entry
		bytes int64
	}
	var cells []cell
	lo, hi := math.Log(float64(art.BytesMin)), math.Log(float64(art.BytesMax))
	for _, fam := range families {
		es := byKernel[fam]
		for i := 0; i < perFamily; i++ {
			e := es[rng.Intn(len(es))]
			b := int64(math.Exp(lo+rng.Float64()*(hi-lo))) &^ 1023
			if b < art.BytesMin {
				b = art.BytesMin
			}
			cells = append(cells, cell{e, b})
		}
	}

	base := config.Default()
	var (
		mu      sync.Mutex
		twinDur time.Duration
		cycDur  time.Duration
		relErrs []float64
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, c := range cells {
		wg.Add(1)
		go func(c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			name := c.entry.Kernel + "/" + c.entry.Primitive
			if c.entry.Cells == 0 || c.entry.CyclesBound == 0 {
				t.Errorf("%s ts=%d: entry was never cross-checked (bounds unset) — the artifact is not trustworthy", name, c.entry.TSBytes)
				return
			}
			prim, err := config.ParsePrimitive(c.entry.Primitive)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			spec, err := kernel.ByName(c.entry.Kernel)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			cfg := base
			cfg.Run.Primitive = prim
			cfg.PIM.TSBytes = c.entry.TSBytes

			t0 := time.Now()
			pred, err := p.Predict(cfg, spec, c.bytes)
			dTwin := time.Since(t0)
			if err != nil {
				t.Errorf("%s @ %d B: twin declined an in-domain cell: %v", name, c.bytes, err)
				return
			}

			t1 := time.Now()
			k, err := kernel.Build(cfg, spec, c.bytes)
			if err != nil {
				t.Errorf("%s @ %d B: %v", name, c.bytes, err)
				return
			}
			m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
			if err != nil {
				t.Errorf("%s @ %d B: %v", name, c.bytes, err)
				return
			}
			meas, err := m.Run()
			dCyc := time.Since(t1)
			if err != nil {
				t.Errorf("%s @ %d B: cycle engine: %v", name, c.bytes, err)
				return
			}

			if pred.Run.PIMCommands != meas.PIMCommands {
				t.Errorf("%s @ %d B: twin PIMCommands %d != cycle %d (counts must be exact)",
					name, c.bytes, pred.Run.PIMCommands, meas.PIMCommands)
			}
			if pred.Run.FenceCount != meas.FenceCount || pred.Run.OLCount != meas.OLCount {
				t.Errorf("%s @ %d B: twin order counts (%d fence, %d OL) != cycle (%d, %d)",
					name, c.bytes, pred.Run.FenceCount, pred.Run.OLCount, meas.FenceCount, meas.OLCount)
			}
			pc, mc := float64(pred.Run.ExecTime()), float64(meas.ExecTime())
			if !twin.Within(pc, mc, c.entry.CyclesBound, twin.CyclesAbsFloor) {
				t.Errorf("%s @ %d B: cycles %0.f vs measured %.0f outside recorded bound %.3f",
					name, c.bytes, pc, mc, c.entry.CyclesBound)
			}
			if !twin.Within(float64(pred.Run.FenceStallCycles), float64(meas.FenceStallCycles), c.entry.FenceBound, twin.StallAbsFloor) {
				t.Errorf("%s @ %d B: fence stalls %d vs measured %d outside recorded bound %.3f",
					name, c.bytes, pred.Run.FenceStallCycles, meas.FenceStallCycles, c.entry.FenceBound)
			}
			if !twin.Within(float64(pred.Run.OLStallCycles), float64(meas.OLStallCycles), c.entry.OLBound, twin.StallAbsFloor) {
				t.Errorf("%s @ %d B: OL stalls %d vs measured %d outside recorded bound %.3f",
					name, c.bytes, pred.Run.OLStallCycles, meas.OLStallCycles, c.entry.OLBound)
			}

			mu.Lock()
			twinDur += dTwin
			cycDur += dCyc
			relErrs = append(relErrs, math.Abs(twin.RelErr(pc, mc, twin.CyclesAbsFloor)))
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	if len(relErrs) == 0 {
		t.Fatal("no cells sampled")
	}
	sort.Float64s(relErrs)
	if med := relErrs[len(relErrs)/2]; med > 0.10 {
		t.Errorf("median relative cycle error %.3f exceeds the 10%% contract", med)
	}
	if speedup := float64(cycDur) / float64(twinDur); speedup < 100 {
		t.Errorf("twin answered %d cells only %.0fx faster than the cycle engine (%v vs %v), want >= 100x",
			len(cells), speedup, twinDur, cycDur)
	} else {
		t.Logf("twin answered %d cells %.0fx faster (%v vs %v), median |cycle err| %.4f",
			len(cells), speedup, twinDur, cycDur, relErrs[len(relErrs)/2])
	}
}

// TestTwinCheckEscalateByteIdentity pins the gate's escape hatch
// through the public facade: a cell outside the calibrated domain (the
// seqno related-work baseline has no twin model) fails with
// ErrTwinOutOfConfidence under WithTwin, and with WithTwinEscalate it
// falls through to the skip-ahead cycle engine byte-identically. An
// in-domain cell answered by the twin must never claim functional
// verification.
func TestTwinCheckEscalateByteIdentity(t *testing.T) {
	p := checkTwinPredictor(t)
	art := p.Artifact()
	ctx := context.Background()

	cfg := DefaultConfig()
	cfg.Run.Primitive = PrimitiveSeqno
	footprint := art.BytesMin // smallest calibrated size: fast ground truth

	if _, err := RunKernelContext(ctx, cfg, "add", footprint, WithTwin(calibrationArtifact)); !errors.Is(err, ErrTwinOutOfConfidence) {
		t.Fatalf("seqno cell on the twin returned %v, want ErrTwinOutOfConfidence", err)
	}
	direct, err := RunKernelContext(ctx, cfg, "add", footprint)
	if err != nil {
		t.Fatal(err)
	}
	esc, err := RunKernelContext(ctx, cfg, "add", footprint, WithTwin(calibrationArtifact), WithTwinEscalate())
	if err != nil {
		t.Fatal(err)
	}
	if esc.String() != direct.String() {
		t.Errorf("escalated cell differs from direct cycle-engine run:\n%s\nvs\n%s", esc, direct)
	}

	cfg.Run.Primitive = PrimitiveFence
	res, err := RunKernelContext(ctx, cfg, "add", footprint, WithTwin(calibrationArtifact))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Error("twin answer claims functional verification")
	}
}

package orderlight

import (
	"context"
	"errors"
	"testing"
	"time"

	"orderlight/internal/stats"
)

// TestBuildOpts pins the one-pass option fold: every With* option sets
// exactly its RunOpts field, and validation happens once in buildOpts
// rather than per entry point.
func TestBuildOpts(t *testing.T) {
	sink := NewPerfettoSink(discard{})
	sampler := NewSampler(100)
	progress := func(done, total int) {}
	fspec := FaultSpec{Class: FaultDropOrdering, Seed: 7, Rate: 0.5}

	o, err := buildOpts(
		WithParallelism(3),
		WithProgress(progress),
		WithKernelCache(false),
		WithDenseEngine(),
		WithScale(Scale{BytesPerChannel: 4096}),
		WithTraceSink(sink),
		WithSampler(sampler),
		WithFaultPlan(fspec),
		WithManifest(),
		WithCheckpointDir("ck"),
		WithCheckpointEvery(512),
		WithResume(),
		WithCellRetries(2),
		WithCellTimeout(5*time.Second),
		WithHaltAfter(9000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if o.Parallelism != 3 || !o.NoKernelCache || !o.Dense || o.BytesPerChannel != 4096 ||
		o.Sink != sink || o.Sampler != sampler || o.Fault != fspec || !o.Manifest ||
		o.CheckpointDir != "ck" || o.CheckpointEvery != 512 || !o.Resume ||
		o.Retries != 2 || o.CellTimeout != 5*time.Second || o.HaltAfter != 9000 ||
		o.Progress == nil {
		t.Fatalf("buildOpts folded wrong: %+v", o)
	}

	invalid := []struct {
		name string
		opts []Option
	}{
		{"resume without dir", []Option{WithResume()}},
		{"cadence without dir", []Option{WithCheckpointEvery(512)}},
		{"negative cadence", []Option{WithCheckpointDir("ck"), WithCheckpointEvery(-1)}},
		{"negative retries", []Option{WithCellRetries(-1)}},
		{"negative timeout", []Option{WithCellTimeout(-time.Second)}},
		{"negative halt", []Option{WithHaltAfter(-5)}},
		{"malformed fault", []Option{WithFaultPlan(FaultSpec{Class: FaultDropOrdering, Rate: 7})}},
	}
	for _, tc := range invalid {
		if _, err := buildOpts(tc.opts...); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: buildOpts = %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestSweepGuards pins the centralized multi-cell guards: every
// single-run-only option is rejected by every fan-out entry point with
// ErrInvalidSpec, enforced in one place (JobRequest.Validate) instead
// of per entry point.
func TestSweepGuards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2
	ctx := context.Background()

	options := map[string]Option{
		"WithTraceSink": WithTraceSink(NewPerfettoSink(discard{})),
		"WithSampler":   WithSampler(stats.NewSampler(100)),
		"WithHaltAfter": WithHaltAfter(1000),
		"WithFaultPlan": WithFaultPlan(FaultSpec{Class: FaultDropOrdering, Seed: 1, Rate: 1}),
	}
	sweeps := map[string]func(Option) error{
		"RunExperimentContext": func(o Option) error {
			_, err := RunExperimentContext(ctx, "fig5", cfg, o)
			return err
		},
		"RunAllExperimentsContext": func(o Option) error {
			_, err := RunAllExperimentsContext(ctx, cfg, o)
			return err
		},
		"RunFaultCampaignContext": func(o Option) error {
			_, _, err := RunFaultCampaignContext(ctx, cfg, o)
			return err
		},
	}
	for oname, opt := range options {
		for sname, run := range sweeps {
			if err := run(opt); !errors.Is(err, ErrInvalidSpec) {
				t.Errorf("%s(%s) = %v, want ErrInvalidSpec", sname, oname, err)
			}
		}
	}
}

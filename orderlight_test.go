package orderlight

import (
	"strings"
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2
	return cfg
}

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := smallConfig()
	cfg.Run.Primitive = PrimitiveOrderLight
	res, err := RunKernel(cfg, "add", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("quickstart run incorrect")
	}
	if res.CommandBW() <= 0 || res.DataBW() <= res.CommandBW() {
		t.Fatalf("bandwidths implausible: %v GC/s, %v GB/s", res.CommandBW(), res.DataBW())
	}
	if !strings.Contains(res.String(), "command bandwidth") {
		t.Fatal("Result.String() missing report fields")
	}
}

func TestPublicKernelRegistry(t *testing.T) {
	if len(Kernels()) != 12 {
		t.Fatalf("Kernels() = %v", Kernels())
	}
	if _, err := KernelSpec("kmeans"); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildKernel(smallConfig(), "not-a-kernel", 1024); err == nil {
		t.Fatal("bogus kernel accepted")
	}
}

func TestPublicPrimitiveComparison(t *testing.T) {
	cfg := smallConfig()
	cfg.Run.Primitive = PrimitiveFence
	fe, err := RunKernel(cfg, "triad", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Run.Primitive = PrimitiveOrderLight
	ol, err := RunKernel(cfg, "triad", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !(fe.ExecMS() > ol.ExecMS()) {
		t.Fatalf("fence (%v ms) not slower than OrderLight (%v ms)", fe.ExecMS(), ol.ExecMS())
	}
}

func TestPublicHostBaseline(t *testing.T) {
	cfg := smallConfig()
	k, err := BuildKernel(cfg, "copy", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if HostBaseline(cfg, k) <= 0 {
		t.Fatal("host baseline must be positive")
	}
}

func TestPublicExperimentAccess(t *testing.T) {
	if len(Experiments()) != 23 {
		t.Fatalf("Experiments() = %v", Experiments())
	}
	tab, err := RunExperiment("table2", smallConfig(), Scale{})
	if err != nil {
		t.Fatal(err)
	}
	if ExperimentTitle("fig5") == "" {
		t.Fatal("missing experiment title")
	}
	if !strings.Contains(tab.Markdown(), "gen_fil") {
		t.Fatal("table2 markdown incomplete")
	}
}

func TestPublicParsePrimitive(t *testing.T) {
	p, err := ParsePrimitive("orderlight")
	if err != nil || p != PrimitiveOrderLight {
		t.Fatal("ParsePrimitive failed")
	}
}

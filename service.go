package orderlight

import (
	"context"
	"net/http"

	"orderlight/internal/serve"
)

// Service is the job-oriented face of the simulator: submit a kernel,
// experiment, sweep or fault-campaign job, observe it, collect its
// result. The Run* facade functions are thin adapters over an
// in-process Service; olserve exposes one over HTTP; ServiceClient
// talks to a remote daemon through the same interface.
type Service = serve.Service

// LocalService is the production Service: a bounded FIFO job queue in
// front of the runner engine with admission control, per-tenant
// quotas, graceful drain and checkpoint-backed preemption.
type LocalService = serve.Local

// LocalServiceConfig tunes a LocalService (queue depth, per-tenant
// quota, worker count, checkpoint root for preemptible jobs, result
// cache directory, and the distributed sweep fabric).
type LocalServiceConfig = serve.LocalConfig

// FabricWorkerOptions tunes one fabric worker loop: its name, poll
// cadence, checkpoint directory and per-lease parallelism override.
type FabricWorkerOptions = serve.WorkerOptions

// FakeService is the injectable Service for tests: scriptable
// admission failures, latencies and outcomes, no engine underneath.
type FakeService = serve.Fake

// ServiceClient implements Service against a remote olserve daemon.
type ServiceClient = serve.Client

// Job types shared between the facade and the HTTP wire format.
type (
	// JobID identifies one submitted job.
	JobID = serve.JobID
	// JobState is a job's lifecycle position; see the Job* constants.
	JobState = serve.JobState
	// JobKind selects what a job simulates; see the Job*Kind constants.
	JobKind = serve.JobKind
	// JobError is the wire form of a job failure: a sentinel code plus
	// message. errors.Is matches it against the Err* sentinels on both
	// sides of the HTTP boundary.
	JobError = serve.JobError
	// JobRequest describes one job (kind, payload, config, options).
	JobRequest = serve.JobRequest
	// JobStatus is a job's observable state.
	JobStatus = serve.JobStatus
	// JobResult is everything a completed job produced.
	JobResult = serve.JobResult
	// WatchEvent is one item in a job's Watch stream.
	WatchEvent = serve.WatchEvent
)

// Job lifecycle states: queued -> running -> done | failed | canceled.
const (
	JobQueued   = serve.StateQueued
	JobRunning  = serve.StateRunning
	JobDone     = serve.StateDone
	JobFailed   = serve.StateFailed
	JobCanceled = serve.StateCanceled
)

// Job kinds.
const (
	JobKernel        = serve.KindKernel
	JobSpec          = serve.KindSpec
	JobExperiment    = serve.KindExperiment
	JobSweep         = serve.KindSweep
	JobFaultCampaign = serve.KindFaultCampaign
)

// Service-level sentinels, matched with errors.Is like the simulation
// sentinels above. The daemon maps the first two to HTTP 429, draining
// to 503, unknown-job to 404 and not-finished to 409.
var (
	ErrQueueFull     = serve.ErrQueueFull
	ErrQuotaExceeded = serve.ErrQuotaExceeded
	ErrDraining      = serve.ErrDraining
	ErrUnknownJob    = serve.ErrUnknownJob
	ErrNotFinished   = serve.ErrNotFinished
)

// NewLocalService creates a production job service and starts its
// workers. Close (or Drain) it when done.
func NewLocalService(cfg LocalServiceConfig) *LocalService {
	return serve.NewLocal(cfg)
}

// NewFakeService creates an empty scripted fake for tests.
func NewFakeService() *FakeService { return serve.NewFake() }

// NewServiceHandler mounts a Service on the /v1 JSON protocol (see
// cmd/olserve). Pass any Service — a LocalService in the daemon, a
// FakeService in handler tests.
func NewServiceHandler(svc Service) http.Handler { return serve.NewHandler(svc) }

// NewServiceClient returns a Service speaking to the daemon at base
// (e.g. "http://localhost:8080"). A nil *http.Client uses
// http.DefaultClient.
func NewServiceClient(base string, hc *http.Client) *ServiceClient {
	return serve.NewClient(base, hc)
}

// AwaitJob blocks until the job reaches a terminal state and returns
// its result or error. onEvent, when non-nil, observes every watch
// event along the way. A canceled ctx cancels the job.
func AwaitJob(ctx context.Context, svc Service, id JobID, onEvent func(WatchEvent)) (*JobResult, error) {
	return serve.Await(ctx, svc, id, onEvent)
}

// RunFabricWorker joins the coordinator behind c as a sweep-fabric
// worker: it polls /v1/work/lease, simulates the leased cell ranges
// locally, and reports outcomes until ctx is canceled. A worker killed
// mid-lease is harmless — the lease expires and another worker (or the
// same one restarted on its checkpoint directory) redoes the range,
// with the journal replaying already-finished cells. The assembled job
// output on the coordinator is byte-identical to a local run.
func RunFabricWorker(ctx context.Context, c *ServiceClient, opts FabricWorkerOptions) error {
	return serve.RunWorker(ctx, c, opts)
}

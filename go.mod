module orderlight

go 1.22

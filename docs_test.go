package orderlight

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Documentation drifts when a flag is renamed but its mention in the
// operator docs is not. This test extracts every backticked -flag
// token from the operator-facing documents and checks that a flag of
// that name is actually registered somewhere in the CLIs (or the
// shared cliflags groups). It is deliberately one-directional:
// documenting a nonexistent flag fails; an undocumented flag does not
// (not every debugging knob belongs in the operator docs).

// docFlagFiles are the documents whose flag mentions must be real.
var docFlagFiles = []string{"ARCHITECTURE.md", "OPERATIONS.md", "README.md"}

// flagSourceFiles is where flags are registered.
var flagSourceGlobs = []string{"cmd/*/main.go", "internal/cliflags/*.go"}

// docFlagAllowlist holds tokens that look like our flags but belong to
// other tools (the Go toolchain, make, shell examples).
var docFlagAllowlist = map[string]bool{
	"race":      true, // go test -race
	"bench":     true, // go test -bench
	"benchtime": true,
	"benchmem":  true,
	"fuzz":      true,
	"fuzztime":  true,
	"run":       true, // go test -run
	"l":         true, // gofmt -l
	"d":         true, // curl -d
	"s":         true, // curl -s
	"sN":        true, // curl -sN
	"X":         true, // curl -X
	"TERM":      true, // kill -TERM
}

// backtickSpan matches inline code spans and fenced code blocks alike
// once the file is scanned span-by-span.
var (
	codeSpan = regexp.MustCompile("(?s)```.*?```|`[^`\n]+`")
	flagTok  = regexp.MustCompile(`(^|[\s=(\[])-([a-zA-Z][a-zA-Z0-9-]*)`)
	flagReg  = regexp.MustCompile(`\.(?:String|Bool|Int|Int64|Uint64|Float64|Duration)(?:Var)?\(\s*(?:&[\w.]+,\s*)?"([a-z][a-z0-9-]*)"`)
)

// registeredFlags collects every flag name the binaries define.
func registeredFlags(t *testing.T) map[string]bool {
	t.Helper()
	flags := map[string]bool{}
	for _, glob := range flagSourceGlobs {
		paths, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatalf("flag source glob %q matched nothing", glob)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range flagReg.FindAllStringSubmatch(string(src), -1) {
				flags[m[1]] = true
			}
		}
	}
	if !flags["addr"] || !flags["cache-dir"] || !flags["engine"] {
		t.Fatalf("flag registration scan looks broken: got %d flags %v", len(flags), flags)
	}
	return flags
}

func TestDocumentedFlagsExist(t *testing.T) {
	flags := registeredFlags(t)
	for _, doc := range docFlagFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("operator doc missing: %v", err)
		}
		checked := 0
		for _, span := range codeSpan.FindAllString(string(data), -1) {
			for _, m := range flagTok.FindAllStringSubmatch(span, -1) {
				name := m[2]
				if docFlagAllowlist[name] {
					continue
				}
				// -engine=dense style: the value after = is not a flag.
				name = strings.SplitN(name, "=", 2)[0]
				checked++
				if !flags[name] {
					t.Errorf("%s documents flag -%s, but no CLI registers it", doc, name)
				}
			}
		}
		if checked == 0 {
			t.Errorf("%s: no backticked -flag tokens found; extraction regex broken?", doc)
		}
	}
}

// TestTwinFlagSurfaceRegistered pins the twin tier's operator surface:
// the flags the docs teach (-engine=twin routing via -engine,
// -calibration, -escalate, and olwhatif's -calibrate/-report/-ts
// query knobs) must stay registered, so a rename cannot silently strand
// the documented workflow even if every doc mention is updated in sync.
func TestTwinFlagSurfaceRegistered(t *testing.T) {
	flags := registeredFlags(t)
	for _, name := range []string{"calibration", "escalate", "calibrate", "out", "report", "ts"} {
		if !flags[name] {
			t.Errorf("twin flag -%s is not registered by any CLI", name)
		}
	}
}

// The reverse direction for the operator-critical olserve surface:
// every daemon/worker flag olserve registers must appear in
// OPERATIONS.md, since that file claims to be the complete reference.
func TestOperationsCoversOlserveFlags(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("cmd", "olserve", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	ops, err := os.ReadFile("OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range flagReg.FindAllStringSubmatch(string(src), -1) {
		if !strings.Contains(string(ops), "`-"+m[1]+"`") {
			t.Errorf("olserve registers -%s but OPERATIONS.md's reference tables do not mention `-%s`", m[1], m[1])
		}
	}
}

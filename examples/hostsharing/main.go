// Hostsharing: fine-grained arbitration in action (§3.4). A PIM kernel
// ordered with OrderLight runs while the host keeps issuing its own
// loads to the same channels. Because the OrderLight packet carries a
// memory-group ID (Figure 8), host traffic mapped to a different group
// is never gated by the PIM kernel's ordering — the property that
// coarse-grained-arbitration designs give up entirely.
//
//	go run ./examples/hostsharing
package main

import (
	"fmt"
	"log"

	"orderlight"
)

func main() {
	cfg := orderlight.DefaultConfig()
	cfg.Run.Primitive = orderlight.PrimitiveOrderLight
	const bytesPerChannel = 64 << 10

	run := func(label string, ht orderlight.HostTraffic) {
		k, err := orderlight.BuildKernel(cfg, "add", bytesPerChannel)
		if err != nil {
			log.Fatal(err)
		}
		m, err := orderlight.NewMachine(cfg, k)
		if err != nil {
			log.Fatal(err)
		}
		if ht.PerChannel > 0 {
			m.SetHostTraffic(ht)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		lat, served := m.HostLatency()
		fmt.Printf("%-42s PIM %8.4f ms (correct=%v)", label, res.ExecMS(), res.Correct)
		if served > 0 {
			fmt.Printf(" | %4d host loads, mean latency %6.0f core cycles", served, lat)
		}
		fmt.Println()
	}

	run("PIM kernel alone", orderlight.HostTraffic{})
	run("+ host loads in another memory-group", orderlight.HostTraffic{PerChannel: 128, EveryN: 20, Group: 2})
	run("+ host loads inside the PIM group", orderlight.HostTraffic{PerChannel: 128, EveryN: 20, Group: 0})

	fmt.Println()
	fmt.Println("Other-group host loads interleave freely (low latency, small PIM")
	fmt.Println("impact); same-group loads are conservatively ordered behind the PIM")
	fmt.Println("kernel's OrderLight packets and pay for it.")
}

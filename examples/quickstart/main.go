// Quickstart: run the paper's vector_add kernel (Figure 4) under all
// three ordering disciplines and compare them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"orderlight"
)

func main() {
	cfg := orderlight.DefaultConfig() // Table 1: 16-channel HBM, BMF 16, TS 1/8 RB
	const bytesPerChannel = 128 << 10

	fmt.Println("vector_add (c[i] = a[i] + b[i]) on 16 PIM-enabled HBM channels")
	fmt.Println()

	k, err := orderlight.BuildKernel(cfg, "add", bytesPerChannel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU-only baseline (roofline): %8.4f ms\n\n", orderlight.HostBaseline(cfg, k))

	for _, prim := range []orderlight.Primitive{
		orderlight.PrimitiveNone,
		orderlight.PrimitiveFence,
		orderlight.PrimitiveOrderLight,
	} {
		cfg.Run.Primitive = prim
		res, err := orderlight.RunKernel(cfg, "add", bytesPerChannel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11v exec %8.4f ms | %6.2f GC/s | %7.1f GB/s | correct=%-5v",
			prim, res.ExecMS(), res.CommandBW(), res.DataBW(), res.Correct)
		if prim == orderlight.PrimitiveFence {
			fmt.Printf(" | %5.0f wait cycles/fence", res.WaitCyclesPerFence())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Expected: no primitive is fastest but functionally incorrect;")
	fmt.Println("fences are correct but stall the core for hundreds of cycles each;")
	fmt.Println("OrderLight is correct at a fraction of the fence cost (paper §7).")
}

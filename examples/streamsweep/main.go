// Streamsweep: sweep the temporary-storage size for every stream kernel
// and print the Figure 10-style comparison of fence versus OrderLight.
//
//	go run ./examples/streamsweep
package main

import (
	"fmt"
	"log"

	"orderlight"
)

func main() {
	cfg := orderlight.DefaultConfig()
	const bytesPerChannel = 128 << 10

	fmt.Println("Stream benchmark sweep: PIM command bandwidth (GC/s) by TS size")
	fmt.Printf("%-7s %-9s %12s %12s %10s\n", "kernel", "TS", "fence GC/s", "OL GC/s", "OL gain")
	for _, name := range []string{"scale", "copy", "daxpy", "triad", "add"} {
		for _, ts := range []string{"1/16", "1/8", "1/4", "1/2"} {
			c := cfg.WithTSFraction(ts)

			c.Run.Primitive = orderlight.PrimitiveFence
			fe, err := orderlight.RunKernel(c, name, bytesPerChannel)
			if err != nil {
				log.Fatal(err)
			}
			c.Run.Primitive = orderlight.PrimitiveOrderLight
			ol, err := orderlight.RunKernel(c, name, bytesPerChannel)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7s %-9s %12.2f %12.2f %9.2fx\n",
				name, ts+" RB", fe.CommandBW(), ol.CommandBW(),
				ol.CommandBW()/fe.CommandBW())
		}
	}
	fmt.Println()
	fmt.Println("Fence bandwidth climbs with TS (fewer fences per command);")
	fmt.Println("OrderLight sits near the DRAM-timing peak at every TS size.")
}

// Genomics: the sequence-filtering kernel (Gen_Fil, the GRIM algorithm
// of Table 2). Filtering dominates sequence-alignment runtime (~65% per
// the paper's §2.1) and issues irregular 128-byte PIM accesses whose
// ordering granularity is fixed by the algorithm — so bigger temporary
// storage cannot amortize fences, and OrderLight's advantage persists at
// every TS size (§7.2).
//
//	go run ./examples/genomics
package main

import (
	"fmt"
	"log"

	"orderlight"
)

func main() {
	cfg := orderlight.DefaultConfig()
	const bytesPerChannel = 128 << 10

	spec, err := orderlight.KernelSpec("gen_fil")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kernel: %s — %s (compute:memory %s)\n\n", spec.Name, spec.Desc, spec.ComputeRatio)

	fmt.Printf("%-9s %12s %12s %10s %22s\n", "TS", "fence ms", "OL ms", "speedup", "primitives/PIM instr")
	for _, ts := range []string{"1/16", "1/8", "1/4", "1/2"} {
		c := cfg.WithTSFraction(ts)

		c.Run.Primitive = orderlight.PrimitiveFence
		fe, err := orderlight.RunKernel(c, "gen_fil", bytesPerChannel)
		if err != nil {
			log.Fatal(err)
		}
		c.Run.Primitive = orderlight.PrimitiveOrderLight
		ol, err := orderlight.RunKernel(c, "gen_fil", bytesPerChannel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %12.4f %12.4f %9.2fx %22.4f\n",
			ts+" RB", fe.ExecMS(), ol.ExecMS(), fe.ExecMS()/ol.ExecMS(),
			ol.PrimitivesPerPIMInstr())
	}
	fmt.Println()
	fmt.Println("The primitive rate is flat across TS sizes: the filter's 128 B seed")
	fmt.Println("granularity fixes the ordering points, so the fence column never")
	fmt.Println("improves — exactly the Gen_Fil behavior in the paper's Figure 12.")
}

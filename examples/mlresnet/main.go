// MLresnet: the data-intensive phases of a ResNet-style training step.
// Per the paper's §2.1, convolutions are compute-bound and stay on the
// GPU, while feature-map addition (residual connections), batch
// normalization, and fully-connected layers are bandwidth-bound (~32% of
// ResNet50 training time) and are offloaded to PIM. This example runs
// those three phases end to end and totals the pipeline time for the GPU
// baseline, fence-ordered PIM, and OrderLight PIM.
//
//	go run ./examples/mlresnet
package main

import (
	"fmt"
	"log"

	"orderlight"
)

func main() {
	cfg := orderlight.DefaultConfig()
	const bytesPerChannel = 128 << 10

	phases := []struct {
		kernel string
		role   string
	}{
		{"add", "feature-map addition (residual connection)"},
		{"bn_fwd", "batch normalization, forward"},
		{"bn_bwd", "batch normalization, backward"},
		{"fc", "fully-connected classifier"},
	}

	var gpuMS, fenceMS, olMS float64
	fmt.Println("ResNet data-intensive phases on PIM:")
	fmt.Printf("%-8s %-45s %10s %10s %10s\n", "kernel", "role", "GPU ms", "fence ms", "OL ms")
	for _, ph := range phases {
		k, err := orderlight.BuildKernel(cfg, ph.kernel, bytesPerChannel)
		if err != nil {
			log.Fatal(err)
		}
		g := orderlight.HostBaseline(cfg, k)

		cfg.Run.Primitive = orderlight.PrimitiveFence
		fe, err := orderlight.RunKernel(cfg, ph.kernel, bytesPerChannel)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Run.Primitive = orderlight.PrimitiveOrderLight
		ol, err := orderlight.RunKernel(cfg, ph.kernel, bytesPerChannel)
		if err != nil {
			log.Fatal(err)
		}
		if !ol.Correct || !fe.Correct {
			log.Fatalf("%s: ordered run verified incorrect", ph.kernel)
		}
		gpuMS += g
		fenceMS += fe.ExecMS()
		olMS += ol.ExecMS()
		fmt.Printf("%-8s %-45s %10.4f %10.4f %10.4f\n", ph.kernel, ph.role, g, fe.ExecMS(), ol.ExecMS())
	}
	fmt.Printf("%-8s %-45s %10.4f %10.4f %10.4f\n", "TOTAL", "", gpuMS, fenceMS, olMS)
	fmt.Println()
	fmt.Printf("Pipeline speedup over GPU:   fence %.2fx, OrderLight %.2fx\n", gpuMS/fenceMS, gpuMS/olMS)
	fmt.Printf("OrderLight speedup vs fence: %.2fx\n", fenceMS/olMS)
}

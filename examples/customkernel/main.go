// Customkernel: author a PIM kernel from scratch through the public API
// — the near-term "intrinsics" programming model of the paper's §5.4.
// The example implements feature standardization from data analytics:
//
//	y[i] = (x[i] - mean) * invStd
//
// as a per-tile phase structure (load x, subtract, scale, store y) and
// compares ordering disciplines on it.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"orderlight"
)

func main() {
	standardize := orderlight.Spec{
		Name:         "standardize",
		Desc:         "y[i] = (x[i] - mean) * invStd",
		ComputeRatio: "2:2",
		DataStructs:  2,
		MultiDS:      true,
		Phases: []orderlight.PhaseSpec{
			// One tile: load N chunks of x into temporary storage...
			{Name: "load x", Kind: orderlight.KindPIMLoad, Vec: 0, CmdsPerN: 1},
			// ...center and scale them in the PIM ALU...
			{Name: "center", Kind: orderlight.KindPIMExec, Op: orderlight.OpSub, Imm: 7, CmdsPerN: 1},
			{Name: "scale", Kind: orderlight.KindPIMExec, Op: orderlight.OpMul, Imm: 3, CmdsPerN: 1},
			// ...and store the standardized values to y.
			{Name: "store y", Kind: orderlight.KindPIMStore, Vec: 1, CmdsPerN: 1},
		},
	}
	if err := standardize.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := orderlight.DefaultConfig()
	const bytesPerChannel = 128 << 10

	fmt.Printf("custom kernel %q: %s\n\n", standardize.Name, standardize.Desc)
	fmt.Printf("%-11s %10s %10s %10s %9s\n", "primitive", "exec ms", "GC/s", "GB/s", "correct")
	for _, prim := range []orderlight.Primitive{
		orderlight.PrimitiveNone, orderlight.PrimitiveFence,
		orderlight.PrimitiveSeqno, orderlight.PrimitiveOrderLight,
	} {
		cfg.Run.Primitive = prim
		k, err := orderlight.BuildCustomKernel(cfg, standardize, bytesPerChannel)
		if err != nil {
			log.Fatal(err)
		}
		m, err := orderlight.NewMachine(cfg, k)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11v %10.4f %10.2f %10.1f %9v\n",
			prim, res.ExecMS(), res.CommandBW(), res.DataBW(), res.Correct)
	}

	// Bonus: the same kernel with tiles spread across memory-groups.
	cfg.Run.Primitive = orderlight.PrimitiveOrderLight
	k, err := orderlight.BuildCustomKernel(cfg, orderlight.SpreadTiles(standardize), bytesPerChannel)
	if err != nil {
		log.Fatal(err)
	}
	m, err := orderlight.NewMachine(cfg, k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s %10.4f %10.2f %10.1f %9v  (orderlight, tiles spread across groups)\n",
		"spread", res.ExecMS(), res.CommandBW(), res.DataBW(), res.Correct)
}

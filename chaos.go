package orderlight

import (
	"context"
	"net/http"

	"orderlight/internal/chaos"
	"orderlight/internal/runner"
	"orderlight/internal/serve"
)

// This file is the public face of the infrastructure chaos harness
// (internal/chaos): deterministic, seed-driven fault injection for the
// serve/fabric/cache plane. One ChaosPlan drives both a transport
// wrapper (connection resets, timeouts, envelope-less 5xx, garbage
// bodies, duplicate deliveries, delays) and a filesystem shim (ENOSPC,
// torn writes, fsync failures, rename races) — every decision a pure
// function of (seed, op index), so a failing run replays exactly from
// its seed. The CLIs expose it as -chaos / -chaos-seed.

// ChaosSpec describes which fault classes a chaos plan arms and at
// what rates; parse one with ParseChaosSpec.
type ChaosSpec = chaos.Spec

// ChaosPlan is a live chaos plan shared by every injector of one
// process. A nil *ChaosPlan injects nothing.
type ChaosPlan = chaos.Plan

// ChaosFS is the injectable filesystem seam the durability layers
// (checkpoints, journals, result-cache blobs) write through. The real
// filesystem is the nil/default; NewChaosFS wraps one with seeded
// fault injection.
type ChaosFS = chaos.FS

// ParseChaosSpec parses a chaos plan description: comma-separated
// class=rate pairs ("reset=0.2,enospc=0.1"), with "net=R" and "fs=R"
// group shorthands. "" and "none" parse to the inactive zero spec.
// The seed travels separately (ChaosSpec.Seed / -chaos-seed).
func ParseChaosSpec(s string) (ChaosSpec, error) { return chaos.ParseSpec(s) }

// NewChaosPlan materializes a spec into a live plan. logf, when
// non-nil, receives one line per injected fault ("chaos: net #12
// reset") — the replayable trace the smoke drill diffs across runs.
// An inactive spec yields a nil plan, which every injector accepts.
func NewChaosPlan(s ChaosSpec, logf func(format string, args ...any)) (*ChaosPlan, error) {
	return chaos.NewPlan(s, logf)
}

// ChaosTransport wraps an http.RoundTripper with the plan's seeded
// network-fault injection; base nil means http.DefaultTransport, and
// a nil plan returns base unchanged.
func ChaosTransport(p *ChaosPlan, base http.RoundTripper) http.RoundTripper {
	return chaos.Transport(p, base)
}

// NewChaosFS wraps a filesystem with the plan's seeded write-path
// fault injection; base nil means the real filesystem, and a nil plan
// returns base unchanged. Reads are never faulted — damage is
// injected on the write path and discovered at read-back.
func NewChaosFS(p *ChaosPlan, base ChaosFS) ChaosFS { return chaos.NewFS(p, base) }

// WithChaosFS routes the run's durability writes (checkpoints,
// journals, result-cache blobs) through fs — typically a NewChaosFS
// sick disk. In-process runs only; it never crosses the wire to a
// daemon, whose disks are its own.
func WithChaosFS(fs ChaosFS) Option {
	return func(o *RunOpts) { o.FS = fs }
}

// ServiceRetryPolicy tunes a ServiceClient's transient-failure retry
// loop; arm it with ServiceClient.EnableRetry. Retried submissions are
// stamped with a content-derived idempotency key so duplicate
// deliveries collapse onto one job.
type ServiceRetryPolicy = serve.RetryPolicy

// ServiceHealth is the daemon's /healthz payload: status ("ok" or
// "draining"), queue load, cache counters and degrade flag, and — on
// fabric coordinators — the per-worker liveness view.
type ServiceHealth = serve.HealthInfo

// FabricWorkerStatus is one fabric worker's liveness snapshot inside
// ServiceHealth: last-seen time, held leases, expiry streak and the
// flap-detection verdict.
type FabricWorkerStatus = runner.WorkerStatus

// SubmitAndAwaitJob is Submit followed by AwaitJob, hardened against a
// daemon restart: when the job vanishes mid-wait (the daemon lost its
// in-memory job store), the identical request is resubmitted and
// awaited again — with a retry-armed client and a journaled fabric
// coordinator, the resubmission attaches to the replayed job and
// completed cells are not re-run.
func SubmitAndAwaitJob(ctx context.Context, svc Service, req JobRequest, onEvent func(WatchEvent)) (*JobResult, error) {
	return serve.SubmitAndAwait(ctx, svc, req, onEvent)
}

GO ?= go
SMOKE_EXP ?= fig5
SMOKE_SIZE ?= 32768
BENCHTIME ?= 2x
BENCH_OUT ?= BENCH_PR9
# Gate tolerance must absorb cross-machine skew: BENCH_PR2 and
# BENCH_PR7 were recorded on different boxes and *every* benchmark —
# including pure-CPU microbenches with no engine involvement — shifted
# +20–60% between them. 75% still fails on a real (≥1.75x) regression
# while letting honest trajectory points from slower machines land.
BENCH_GATE ?= BenchmarkFig12Applications:75,BenchmarkFig10aStreamBandwidth:75
COVER_FLOOR ?= 80.0
FUZZTIME ?= 10s
CKPT_FUZZTIME ?= 5s

.PHONY: ci vet build test race race-parallel smoke smoke-serve smoke-fabric smoke-chaos cover fuzz-smoke fuzz-ckpt calibrate check-twin speedup bench bench-compare profile results check-results clean

# ci is the tier-1 gate: vet, build, the full test suite under the race
# detector (including the serve handler tests), the parallel-engine
# suite under the race detector with shards forced past the core count,
# a parallel-vs-sequential smoke of the CLIs, a daemon lifecycle smoke
# (start → healthz → submit → SIGTERM drain → resume), a distributed
# sweep-fabric smoke (coordinator + two workers + mid-run SIGKILL), the
# chaos drill (the same fabric under seeded network+disk fault
# injection plus a coordinator SIGKILL/restart), a brief run of the
# checkpoint-decoder fuzzer (crash-safety is a tier-1 property), and
# the twin-engine envelope gate (check-twin).
ci: vet build race race-parallel smoke smoke-serve smoke-fabric smoke-chaos fuzz-ckpt check-twin

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-parallel runs every parallel-engine test (three-way parity,
# event-stream identity, halt/resume, fault-campaign parity, the shard
# pool) under the race detector. `race` above already covers these at
# default shard counts; this target is the dedicated gate for the
# intra-run engine's synchronization, kept separate so a data race in
# the shard machinery is named by the target that failed.
race-parallel:
	$(GO) test -race -run 'Parallel|Pool|Overlay|FoldFrom|ThreeWay|Engine' \
		./internal/experiments ./internal/runner ./internal/sim \
		./internal/dram ./internal/stats ./internal/serve

# smoke checks the two CLI contracts end to end: olsim exits non-zero
# exactly when verification fails, and olbench's parallel sweep renders
# byte-identical output to a sequential (-parallel 1) one.
smoke:
	@$(GO) build -o /tmp/ol-smoke-olsim ./cmd/olsim
	@$(GO) build -o /tmp/ol-smoke-olbench ./cmd/olbench
	@/tmp/ol-smoke-olsim -kernel add -primitive orderlight -bytes $(SMOKE_SIZE) >/dev/null
	@if /tmp/ol-smoke-olsim -kernel add -primitive none -bytes $(SMOKE_SIZE) >/dev/null 2>&1; then \
		echo "smoke: FAIL: incorrect run did not exit non-zero"; exit 1; fi
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) -parallel 1 >$$tmp/seq.md 2>$$tmp/seq.log; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) >$$tmp/par.md 2>$$tmp/par.log; \
	diff $$tmp/seq.md $$tmp/par.md >/dev/null || { \
		echo "smoke: FAIL: parallel output differs from sequential"; exit 1; }; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) -dense >$$tmp/dense.md 2>$$tmp/dense.log; \
	diff $$tmp/seq.md $$tmp/dense.md >/dev/null || { \
		echo "smoke: FAIL: dense-engine output differs from skip-ahead"; exit 1; }; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) -engine parallel -shards 4 \
		>$$tmp/pareng.md 2>$$tmp/pareng.log; \
	diff $$tmp/seq.md $$tmp/pareng.md >/dev/null || { \
		echo "smoke: FAIL: parallel-engine output differs from skip-ahead"; exit 1; }; \
	cat $$tmp/seq.log $$tmp/par.log; \
	echo "smoke: OK (worker-pool, dense-engine and parallel-engine output byte-identical)"
	@$(GO) build -o /tmp/ol-smoke-olfault ./cmd/olfault
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	/tmp/ol-smoke-olfault -seed 1 -campaign default >$$tmp/a.md || { \
		echo "smoke: FAIL: fault campaign found escapes or missed the pinned case"; exit 1; }; \
	/tmp/ol-smoke-olfault -seed 1 -campaign default >$$tmp/b.md; \
	diff $$tmp/a.md $$tmp/b.md >/dev/null || { \
		echo "smoke: FAIL: fault campaign not byte-identical across runs"; exit 1; }; \
	echo "smoke: OK (fault campaign deterministic, zero escapes)"
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	/tmp/ol-smoke-olsim -kernel add -primitive orderlight -bytes $(SMOKE_SIZE) >$$tmp/full.txt; \
	/tmp/ol-smoke-olsim -kernel add -primitive orderlight -bytes $(SMOKE_SIZE) \
		-checkpoint-dir $$tmp/ck -stop-after 400 >/dev/null 2>&1; st=$$?; \
	if [ $$st -ne 3 ]; then \
		echo "smoke: FAIL: -stop-after run exited $$st, want 3 (halted)"; exit 1; fi; \
	ls $$tmp/ck/*.ckpt >/dev/null 2>&1 || { \
		echo "smoke: FAIL: halted run left no checkpoint on disk"; exit 1; }; \
	/tmp/ol-smoke-olsim -kernel add -primitive orderlight -bytes $(SMOKE_SIZE) \
		-checkpoint-dir $$tmp/ck -resume >$$tmp/resumed.txt || { \
		echo "smoke: FAIL: resume from checkpoint failed"; exit 1; }; \
	diff $$tmp/full.txt $$tmp/resumed.txt >/dev/null || { \
		echo "smoke: FAIL: resumed run differs from uninterrupted run"; exit 1; }; \
	echo "smoke: OK (checkpoint/kill/resume byte-identical)"

# smoke-serve checks the daemon contract end to end: a real olserve
# process serves a figure byte-identically to a local run, SIGTERM
# mid-sweep drains gracefully (exit 0, progress journaled under
# -checkpoint-root), and a restarted daemon resumes the identically
# resubmitted request — rendering the same bytes as a local run.
smoke-serve:
	@$(GO) build -o /tmp/ol-smoke-olserve ./cmd/olserve
	@$(GO) build -o /tmp/ol-smoke-olbench ./cmd/olbench
	@tmp=$$(mktemp -d); pid=; pid2=; \
	trap 'kill $$pid $$pid2 2>/dev/null; rm -rf $$tmp' EXIT; \
	/tmp/ol-smoke-olserve -addr localhost:0 -addr-file $$tmp/addr \
		-checkpoint-root $$tmp/ck -workers 2 2>$$tmp/serve1.log & pid=$$!; \
	i=0; while [ ! -s $$tmp/addr ] && [ $$i -lt 100 ]; do sleep 0.05; i=$$((i+1)); done; \
	base="http://$$(cat $$tmp/addr)"; \
	/tmp/ol-smoke-olserve -healthcheck $$base >/dev/null || { \
		echo "smoke-serve: FAIL: daemon never became healthy"; cat $$tmp/serve1.log; exit 1; }; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) >$$tmp/local.md 2>/dev/null; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) -server $$base >$$tmp/served.md 2>/dev/null || { \
		echo "smoke-serve: FAIL: daemon-submitted $(SMOKE_EXP) failed"; cat $$tmp/serve1.log; exit 1; }; \
	diff $$tmp/local.md $$tmp/served.md >/dev/null || { \
		echo "smoke-serve: FAIL: daemon output differs from local run"; exit 1; }; \
	echo "smoke-serve: OK ($(SMOKE_EXP) over HTTP byte-identical to local run)"; \
	/tmp/ol-smoke-olbench -exp fig12 -size $(SMOKE_SIZE) -server $$base \
		>/dev/null 2>&1 & cpid=$$!; \
	i=0; until ls $$tmp/ck/*/journal.jsonl >/dev/null 2>&1; do \
		if [ $$i -ge 200 ]; then \
			echo "smoke-serve: FAIL: sweep left no journal under -checkpoint-root"; exit 1; fi; \
		sleep 0.05; i=$$((i+1)); done; \
	kill -TERM $$pid; \
	wait $$pid || { echo "smoke-serve: FAIL: drain exited non-zero"; cat $$tmp/serve1.log; exit 1; }; \
	pid=; wait $$cpid 2>/dev/null || true; \
	/tmp/ol-smoke-olserve -addr localhost:0 -addr-file $$tmp/addr2 \
		-checkpoint-root $$tmp/ck -workers 2 2>$$tmp/serve2.log & pid2=$$!; \
	i=0; while [ ! -s $$tmp/addr2 ] && [ $$i -lt 100 ]; do sleep 0.05; i=$$((i+1)); done; \
	base2="http://$$(cat $$tmp/addr2)"; \
	/tmp/ol-smoke-olserve -healthcheck $$base2 >/dev/null || { \
		echo "smoke-serve: FAIL: restarted daemon never became healthy"; cat $$tmp/serve2.log; exit 1; }; \
	/tmp/ol-smoke-olbench -exp fig12 -size $(SMOKE_SIZE) >$$tmp/fig12-local.md 2>/dev/null; \
	/tmp/ol-smoke-olbench -exp fig12 -size $(SMOKE_SIZE) -server $$base2 >$$tmp/fig12-resumed.md 2>/dev/null || { \
		echo "smoke-serve: FAIL: resumed fig12 failed"; cat $$tmp/serve2.log; exit 1; }; \
	diff $$tmp/fig12-local.md $$tmp/fig12-resumed.md >/dev/null || { \
		echo "smoke-serve: FAIL: resumed fig12 differs from local run"; exit 1; }; \
	kill -TERM $$pid2; wait $$pid2 || true; pid2=; \
	echo "smoke-serve: OK (SIGTERM drained mid-sweep; restarted daemon resumed fig12 byte-identically)"

# smoke-fabric checks the distributed sweep fabric end to end: an
# olserve coordinator (-fabric, 1-cell leases, short lease TTL) farms a
# fig12 sweep out to olserve -worker processes; the first worker is
# SIGKILLed mid-run, a second worker joins, and the first restarts on
# its own checkpoint directory (its journal replays finished cells).
# The assembled output must be byte-identical to a local olbench run —
# across a worker crash, a lease expiry and a mixed worker pool.
smoke-fabric:
	@$(GO) build -o /tmp/ol-smoke-olserve ./cmd/olserve
	@$(GO) build -o /tmp/ol-smoke-olbench ./cmd/olbench
	@tmp=$$(mktemp -d); pid=; w1=; w2=; w1b=; \
	trap 'kill -9 $$pid $$w1 $$w2 $$w1b 2>/dev/null; rm -rf $$tmp' EXIT; \
	/tmp/ol-smoke-olserve -addr localhost:0 -addr-file $$tmp/addr \
		-fabric -lease-timeout 2s -chunk 1 -workers 2 2>$$tmp/serve.log & pid=$$!; \
	i=0; while [ ! -s $$tmp/addr ] && [ $$i -lt 100 ]; do sleep 0.05; i=$$((i+1)); done; \
	base="http://$$(cat $$tmp/addr)"; \
	/tmp/ol-smoke-olserve -healthcheck $$base >/dev/null || { \
		echo "smoke-fabric: FAIL: coordinator never became healthy"; cat $$tmp/serve.log; exit 1; }; \
	/tmp/ol-smoke-olbench -exp fig12 -size $(SMOKE_SIZE) -server $$base -fabric \
		>$$tmp/fabric.md 2>$$tmp/olbench.log & cpid=$$!; \
	/tmp/ol-smoke-olserve -worker $$base -worker-name w1 \
		-worker-checkpoint-dir $$tmp/w1 2>$$tmp/w1.log & w1=$$!; \
	i=0; until [ -s $$tmp/w1/journal.jsonl ]; do \
		if [ $$i -ge 400 ]; then \
			echo "smoke-fabric: FAIL: worker 1 journaled no cells"; \
			cat $$tmp/serve.log $$tmp/w1.log; exit 1; fi; \
		sleep 0.05; i=$$((i+1)); done; \
	kill -9 $$w1; wait $$w1 2>/dev/null; w1=; \
	/tmp/ol-smoke-olserve -worker $$base -worker-name w2 \
		-worker-checkpoint-dir $$tmp/w2 2>$$tmp/w2.log & w2=$$!; \
	/tmp/ol-smoke-olserve -worker $$base -worker-name w1b \
		-worker-checkpoint-dir $$tmp/w1 2>$$tmp/w1b.log & w1b=$$!; \
	wait $$cpid || { \
		echo "smoke-fabric: FAIL: fabric sweep failed"; \
		cat $$tmp/serve.log $$tmp/olbench.log; exit 1; }; \
	/tmp/ol-smoke-olbench -exp fig12 -size $(SMOKE_SIZE) >$$tmp/local.md 2>/dev/null; \
	diff $$tmp/local.md $$tmp/fabric.md >/dev/null || { \
		echo "smoke-fabric: FAIL: fabric output differs from local run"; exit 1; }; \
	kill $$w2 $$w1b 2>/dev/null; kill -TERM $$pid; wait $$pid || true; pid=; w2=; w1b=; \
	echo "smoke-fabric: OK (fig12 over 2 workers + mid-run SIGKILL byte-identical to local)"

# smoke-chaos is the fault-injection drill: the smoke-fabric topology
# (coordinator + two workers, 1-cell leases) runs with -chaos armed on
# both workers — seeded network faults on every coordinator call,
# seeded disk faults on every journal write — a journaled coordinator
# is SIGKILLed mid-run and restarted on the same -fabric-journal, and
# the reassembled output must STILL be byte-identical to a local run.
# A second leg pins the determinism claim itself: two identical local
# runs with the same -chaos-seed must emit the identical injected-fault
# trace (and identical results), so any failure this target ever finds
# is replayable from its seed.
smoke-chaos:
	@$(GO) build -o /tmp/ol-smoke-olserve ./cmd/olserve
	@$(GO) build -o /tmp/ol-smoke-olbench ./cmd/olbench
	@tmp=$$(mktemp -d); pid=; pid2=; w1=; w2=; \
	trap 'kill -9 $$pid $$pid2 $$w1 $$w2 2>/dev/null; rm -rf $$tmp' EXIT; \
	/tmp/ol-smoke-olserve -addr localhost:0 -addr-file $$tmp/addr \
		-fabric -fabric-journal $$tmp/board.journal -lease-timeout 2s -chunk 1 \
		-workers 2 2>$$tmp/serve1.log & pid=$$!; \
	i=0; while [ ! -s $$tmp/addr ] && [ $$i -lt 100 ]; do sleep 0.05; i=$$((i+1)); done; \
	base="http://$$(cat $$tmp/addr)"; \
	/tmp/ol-smoke-olserve -healthcheck $$base >/dev/null || { \
		echo "smoke-chaos: FAIL: coordinator never became healthy"; cat $$tmp/serve1.log; exit 1; }; \
	/tmp/ol-smoke-olserve -worker $$base -worker-name cw1 -worker-checkpoint-dir $$tmp/w1 \
		-chaos net=0.15,fs=0.15 -chaos-seed 7 2>$$tmp/w1.log & w1=$$!; \
	/tmp/ol-smoke-olserve -worker $$base -worker-name cw2 -worker-checkpoint-dir $$tmp/w2 \
		-chaos net=0.15,fs=0.15 -chaos-seed 8 2>$$tmp/w2.log & w2=$$!; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) -server $$base -fabric \
		>$$tmp/chaos.md 2>$$tmp/olbench.log & cpid=$$!; \
	i=0; until grep -q '"cell"' $$tmp/board.journal 2>/dev/null; do \
		if [ $$i -ge 600 ]; then \
			echo "smoke-chaos: FAIL: no cell completed under chaos"; \
			cat $$tmp/serve1.log $$tmp/w1.log $$tmp/w2.log; exit 1; fi; \
		sleep 0.05; i=$$((i+1)); done; \
	kill -9 $$pid; wait $$pid 2>/dev/null; pid=; \
	/tmp/ol-smoke-olserve -addr $${base#http://} \
		-fabric -fabric-journal $$tmp/board.journal -lease-timeout 2s -chunk 1 \
		-workers 2 2>$$tmp/serve2.log & pid2=$$!; \
	/tmp/ol-smoke-olserve -healthcheck $$base >/dev/null || { \
		echo "smoke-chaos: FAIL: restarted coordinator never became healthy"; cat $$tmp/serve2.log; exit 1; }; \
	wait $$cpid || { \
		echo "smoke-chaos: FAIL: fabric sweep failed under chaos"; \
		cat $$tmp/serve1.log $$tmp/serve2.log $$tmp/olbench.log $$tmp/w1.log $$tmp/w2.log; exit 1; }; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) >$$tmp/local.md 2>/dev/null; \
	diff $$tmp/local.md $$tmp/chaos.md >/dev/null || { \
		echo "smoke-chaos: FAIL: chaos-fabric output differs from local run"; exit 1; }; \
	kill $$w1 $$w2 2>/dev/null; kill -TERM $$pid2; wait $$pid2 2>/dev/null || true; pid2=; w1=; w2=; \
	echo "smoke-chaos: OK ($(SMOKE_EXP) over 2 chaos workers + coordinator SIGKILL/restart byte-identical to local)"
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) -parallel 1 \
		-cache-dir $$tmp/rc1 -chaos fs=0.4 -chaos-seed 11 >$$tmp/a.md 2>$$tmp/a.log || { \
		echo "smoke-chaos: FAIL: run did not survive disk chaos"; cat $$tmp/a.log; exit 1; }; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) -parallel 1 \
		-cache-dir $$tmp/rc2 -chaos fs=0.4 -chaos-seed 11 >$$tmp/b.md 2>$$tmp/b.log || { \
		echo "smoke-chaos: FAIL: second chaos run failed"; cat $$tmp/b.log; exit 1; }; \
	grep '^chaos:' $$tmp/a.log >$$tmp/a.trace; grep '^chaos:' $$tmp/b.log >$$tmp/b.trace; \
	[ -s $$tmp/a.trace ] || { \
		echo "smoke-chaos: FAIL: fs=0.4 injected no faults (trace empty)"; exit 1; }; \
	diff $$tmp/a.trace $$tmp/b.trace >/dev/null || { \
		echo "smoke-chaos: FAIL: same seed produced different fault sequences"; \
		diff $$tmp/a.trace $$tmp/b.trace | head; exit 1; }; \
	diff $$tmp/a.md $$tmp/b.md >/dev/null || { \
		echo "smoke-chaos: FAIL: chaos runs not byte-identical"; exit 1; }; \
	echo "smoke-chaos: OK (seed 11 replayed $$(wc -l <$$tmp/a.trace) injected faults identically; output byte-identical)"

# cover enforces a statement-coverage floor over the internal packages.
# The floor sits well under the current ~87% so legitimate refactors
# don't trip it, but a dropped test file does.
cover:
	@$(GO) test -coverprofile=cover.out ./internal/... >/dev/null
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "cover: internal/... total $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { exit !(t+0 >= f+0) }' || { \
		echo "cover: FAIL: $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# fuzz-smoke runs each native fuzz target briefly (default 10s each):
# long enough to exercise the generators and corpus mutations, short
# enough for every CI run. Crashers land in testdata/fuzz/ as usual.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPacketRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/isa
	$(GO) test -run '^$$' -fuzz '^FuzzKernelSpec$$' -fuzztime $(FUZZTIME) ./internal/kernel
	$(GO) test -run '^$$' -fuzz '^FuzzFaultPlan$$' -fuzztime $(FUZZTIME) ./internal/runner
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) ./internal/ckpt
	$(GO) test -run '^$$' -fuzz '^FuzzResultCacheDecode$$' -fuzztime $(FUZZTIME) ./internal/rcache
	$(GO) test -run '^$$' -fuzz '^FuzzCalibrationDecode$$' -fuzztime $(FUZZTIME) ./internal/twin
	$(GO) test -run '^$$' -fuzz '^FuzzChaosPlanDecode$$' -fuzztime $(FUZZTIME) ./internal/chaos

# fuzz-ckpt is the short ci-gate slice of the checkpoint fuzzer: a few
# seconds is enough to replay the committed corpus plus a burst of
# mutations on every ci run.
fuzz-ckpt:
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(CKPT_FUZZTIME) ./internal/ckpt

# calibrate regenerates the committed twin calibration artifact from
# pinned seeds: cycle-engine anchor runs over every Table 2 kernel,
# primitive and temporary-storage fraction, a least-squares fit, and a
# cross-check pass that records each family's error envelope. The
# artifact carries no timestamps and sorts its entries canonically, so
# regeneration is byte-identical and CI can diff it like results_all.md.
calibrate:
	$(GO) run ./cmd/olwhatif -calibrate -out calibration.olcal

# check-twin is the twin-engine envelope gate: it requires the
# committed calibration artifact, then replays seeded random cells per
# kernel family — sizes the calibration pass never measured — on both
# the twin and the skip-ahead cycle engine. It fails when any answer
# leaves the artifact's recorded error bound, when the median cycle
# error tops 10%, when the analytical answers are not >=100x faster in
# aggregate, or when an escalated out-of-confidence cell is not
# byte-identical to a direct cycle-engine run.
check-twin:
	@test -f calibration.olcal || { \
		echo "check-twin: FAIL: calibration.olcal missing; run 'make calibrate' and commit it"; exit 1; }
	$(GO) test -run '^TestTwinCheck' -count=1 .

# results regenerates results_all.md — every experiment's tables plus a
# collapsed per-cell run-manifest block (config hash, seed, engine,
# footprint). The rendered manifests carry only deterministic fields,
# so the whole artifact is byte-identical across regenerations and
# check-results can diff it against the committed copy.
results:
	$(GO) run ./cmd/olbench -exp all -manifest > results_all.md
	@if [ -f calibration.olcal ]; then \
		$(GO) run ./cmd/olwhatif -report -calibration calibration.olcal >> results_all.md; \
		echo "results: appended twin error-bound table from calibration.olcal"; fi
	@if [ -f $(BENCH_OUT).json ]; then \
		$(GO) run ./cmd/benchjson -scaling $(BENCH_OUT).json >> results_all.md; \
		echo "results: appended shard-scaling curve from $(BENCH_OUT).json"; fi
	@echo "results: wrote results_all.md"

# check-results fails when the committed results_all.md has drifted
# from what `make results` would regenerate — i.e. when a change moved
# the tables but the artifact was not refreshed. Run by CI.
check-results: results
	@git diff --exit-code -- results_all.md || { \
		echo "check-results: FAIL: results_all.md is stale; run 'make results' and commit it"; exit 1; }

# speedup times the full experiment sweep sequentially and in parallel.
# Informational: the ratio tracks the core count (expect ~Nx on N CPUs,
# ~1x on a single-CPU machine).
speedup:
	@$(GO) build -o /tmp/ol-speedup-olbench ./cmd/olbench
	@echo "sequential (-parallel 1):"; \
	time /tmp/ol-speedup-olbench -exp all -parallel 1 >/dev/null
	@echo "parallel (all CPUs):"; \
	time /tmp/ol-speedup-olbench -exp all >/dev/null

# bench records one point on the benchmark trajectory: the root-package
# suite (figure regenerations, machine runs, component microbenchmarks,
# and the Foo/FooDense engine pairs) lands in $(BENCH_OUT).txt (raw,
# benchstat-compatible) and $(BENCH_OUT).json (parsed, with derived
# dense-vs-skip speedups).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) . | tee $(BENCH_OUT).txt
	$(GO) run ./cmd/benchjson -label $(BENCH_OUT) $(BENCH_OUT).txt > $(BENCH_OUT).json
	@echo "bench: wrote $(BENCH_OUT).txt and $(BENCH_OUT).json"

# bench-compare diffs $(BENCH_OUT).json against the newest other
# BENCH_*.json in the repository — the previous point on the trajectory.
# The $(BENCH_GATE) benchmarks are hard floors: a regression beyond the
# per-gate tolerance fails the target. The tolerance is generous (75%)
# because trajectory points are recorded on different machines — see
# the BENCH_GATE comment at the top of this file.
bench-compare:
	@prev=$$(ls -1t BENCH_*.json 2>/dev/null | grep -vx '$(BENCH_OUT).json' | head -1); \
	if [ -z "$$prev" ]; then \
		echo "bench-compare: no prior BENCH_*.json trajectory point"; exit 0; fi; \
	$(GO) run ./cmd/benchjson -compare -gate '$(BENCH_GATE)' $$prev $(BENCH_OUT).json

# profile captures CPU and heap profiles of the heaviest steady
# benchmark (whole-machine fence run); inspect with `go tool pprof`.
profile:
	$(GO) test -run '^$$' -bench 'MachineAddFence$$' -benchtime=$(BENCHTIME) \
		-cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "profile: wrote cpu.pprof and mem.pprof (go tool pprof cpu.pprof)"

clean:
	rm -f /tmp/ol-smoke-olsim /tmp/ol-smoke-olbench /tmp/ol-smoke-olfault \
		/tmp/ol-smoke-olserve /tmp/ol-speedup-olbench \
		cpu.pprof mem.pprof cover.out orderlight.test

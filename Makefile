GO ?= go
SMOKE_EXP ?= fig5
SMOKE_SIZE ?= 32768

.PHONY: ci vet build test race smoke speedup bench clean

# ci is the tier-1 gate: vet, build, the full test suite under the race
# detector, and a parallel-vs-sequential smoke of the CLIs.
ci: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke checks the two CLI contracts end to end: olsim exits non-zero
# exactly when verification fails, and olbench's parallel sweep renders
# byte-identical output to a sequential (-parallel 1) one.
smoke:
	@$(GO) build -o /tmp/ol-smoke-olsim ./cmd/olsim
	@$(GO) build -o /tmp/ol-smoke-olbench ./cmd/olbench
	@/tmp/ol-smoke-olsim -kernel add -primitive orderlight -bytes $(SMOKE_SIZE) >/dev/null
	@if /tmp/ol-smoke-olsim -kernel add -primitive none -bytes $(SMOKE_SIZE) >/dev/null 2>&1; then \
		echo "smoke: FAIL: incorrect run did not exit non-zero"; exit 1; fi
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) -parallel 1 >$$tmp/seq.md 2>$$tmp/seq.log; \
	/tmp/ol-smoke-olbench -exp $(SMOKE_EXP) -size $(SMOKE_SIZE) >$$tmp/par.md 2>$$tmp/par.log; \
	diff $$tmp/seq.md $$tmp/par.md >/dev/null || { \
		echo "smoke: FAIL: parallel output differs from sequential"; exit 1; }; \
	cat $$tmp/seq.log $$tmp/par.log; \
	echo "smoke: OK (parallel output byte-identical to sequential)"

# speedup times the full experiment sweep sequentially and in parallel.
# Informational: the ratio tracks the core count (expect ~Nx on N CPUs,
# ~1x on a single-CPU machine).
speedup:
	@$(GO) build -o /tmp/ol-speedup-olbench ./cmd/olbench
	@echo "sequential (-parallel 1):"; \
	time /tmp/ol-speedup-olbench -exp all -parallel 1 >/dev/null
	@echo "parallel (all CPUs):"; \
	time /tmp/ol-speedup-olbench -exp all >/dev/null

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

clean:
	rm -f /tmp/ol-smoke-olsim /tmp/ol-smoke-olbench /tmp/ol-speedup-olbench
